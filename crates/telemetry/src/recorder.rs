//! Event sinks: the [`Recorder`] trait and its two implementations.
//!
//! Hot loops are instrumented in one of two dispatch styles, both free of
//! `dyn`:
//!
//! * **generic** — `fn lic_traced<R: Recorder>(..., rec: &mut R)`: with
//!   [`NullRecorder`] every `record` call monomorphizes to nothing, so the
//!   untraced entry point compiles to the identical machine code it had
//!   before instrumentation;
//! * **enum-dispatched** — the engines own an [`EventLog`] whose disabled
//!   state is a single predictable branch per event and never allocates
//!   (the event vector is only created on first enabled push).

use crate::event::{MessageKind, NodeEvent, SpanId, TelemetryEvent};
use owp_graph::{EdgeId, NodeId};

/// A sink for [`TelemetryEvent`]s.
///
/// Call sites that would do extra work *building* an event (counting
/// skipped entries, cloning sets) should guard on [`Recorder::is_enabled`]
/// first; `record` itself must already be free when disabled.
pub trait Recorder {
    /// `true` iff recorded events are kept. Constant-foldable for
    /// [`NullRecorder`].
    fn is_enabled(&self) -> bool;

    /// Records one event. Must be a no-op when disabled.
    fn record(&mut self, ev: TelemetryEvent);
}

/// Forwarding impl so instrumented functions can be handed `&mut log`
/// without giving up the caller's ownership.
impl<R: Recorder + ?Sized> Recorder for &mut R {
    #[inline(always)]
    fn is_enabled(&self) -> bool {
        (**self).is_enabled()
    }

    #[inline(always)]
    fn record(&mut self, ev: TelemetryEvent) {
        (**self).record(ev)
    }
}

/// The zero-cost disabled recorder: generic call sites instantiated with
/// `NullRecorder` compile to the uninstrumented code.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    #[inline(always)]
    fn is_enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn record(&mut self, _ev: TelemetryEvent) {}
}

/// An append-only in-memory event log with a runtime on/off switch —
/// the enum-dispatched recorder the simulation engines own (they cannot be
/// generic over tracing without bifurcating every caller).
///
/// Disabled is the default and costs one branch per offered event; the
/// backing vector is not even allocated until the first enabled push, so a
/// disabled log performs **zero** heap allocation no matter how many
/// events are offered (asserted by the capacity test below).
#[derive(Clone, Debug, Default)]
pub struct EventLog {
    enabled: bool,
    events: Vec<TelemetryEvent>,
}

impl EventLog {
    /// Creates an enabled log.
    pub fn enabled() -> Self {
        EventLog {
            enabled: true,
            events: Vec::new(),
        }
    }

    /// Creates a disabled log (records nothing, allocates nothing).
    pub fn disabled() -> Self {
        EventLog::default()
    }

    /// The recorded events, in occurrence order.
    pub fn events(&self) -> &[TelemetryEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` iff nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Capacity of the backing vector — 0 for a log that never recorded,
    /// which is how the zero-allocation guarantee is asserted in tests.
    pub fn events_capacity(&self) -> usize {
        self.events.capacity()
    }

    /// Delivered-message events only.
    pub fn deliveries(&self) -> impl Iterator<Item = &TelemetryEvent> {
        self.events
            .iter()
            .filter(|e| matches!(e, TelemetryEvent::Delivered { .. }))
    }

    /// Events matching a tag (see [`TelemetryEvent::tag`]).
    pub fn with_tag<'a>(&'a self, tag: &'a str) -> impl Iterator<Item = &'a TelemetryEvent> {
        self.events.iter().filter(move |e| e.tag() == tag)
    }

    /// Serializes the whole log as JSONL (one event object per line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(&ev.to_json());
            out.push('\n');
        }
        out
    }

    /// Parses a JSONL document written by [`EventLog::to_jsonl`] back into
    /// an (enabled) log — the offline half of `owp-inspect causal`, which
    /// reconstructs happens-before DAGs from trace files on disk.
    ///
    /// The full event vocabulary round-trips: `parse_jsonl(log.to_jsonl())`
    /// reproduces `log.events()` exactly. Blank lines are skipped; any
    /// malformed line is an `Err` naming its line number.
    pub fn parse_jsonl(doc: &str) -> Result<EventLog, String> {
        let mut log = EventLog::enabled();
        for (idx, line) in doc.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let ev = parse_event_line(line).map_err(|e| format!("line {}: {e}", idx + 1))?;
            log.events.push(ev);
        }
        Ok(log)
    }
}

/// One raw `"key":value` pair of a flat event object; the value keeps its
/// JSON spelling (`7`, `"PROP"`, `null`).
fn split_fields(line: &str) -> Result<Vec<(&str, &str)>, String> {
    let body = line
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or("not an object")?;
    let mut fields = Vec::new();
    let mut rest = body;
    while !rest.is_empty() {
        let after_quote = rest.strip_prefix('"').ok_or("expected key quote")?;
        let key_end = after_quote.find('"').ok_or("unterminated key")?;
        let key = &after_quote[..key_end];
        let after_key = after_quote[key_end + 1..]
            .strip_prefix(':')
            .ok_or("expected ':' after key")?;
        // Values are numbers, null, or label strings (which never contain
        // escapes), so the value ends at the first comma outside quotes.
        let mut in_str = false;
        let mut val_end = after_key.len();
        for (i, c) in after_key.char_indices() {
            match c {
                '"' => in_str = !in_str,
                ',' if !in_str => {
                    val_end = i;
                    break;
                }
                _ => {}
            }
        }
        let value = &after_key[..val_end];
        if value.is_empty() {
            return Err(format!("empty value for key {key:?}"));
        }
        fields.push((key, value));
        rest = &after_key[val_end..];
        rest = rest.strip_prefix(',').unwrap_or(rest);
    }
    Ok(fields)
}

fn lookup<'a>(fields: &[(&'a str, &'a str)], key: &str) -> Result<&'a str, String> {
    fields
        .iter()
        .find(|(k, _)| *k == key)
        .map(|&(_, v)| v)
        .ok_or_else(|| format!("missing field {key:?}"))
}

fn num(fields: &[(&str, &str)], key: &str) -> Result<u64, String> {
    let raw = lookup(fields, key)?;
    raw.parse::<u64>().map_err(|_| format!("field {key:?} is not a u64: {raw:?}"))
}

fn num32(fields: &[(&str, &str)], key: &str) -> Result<u32, String> {
    let raw = lookup(fields, key)?;
    raw.parse::<u32>().map_err(|_| format!("field {key:?} is not a u32: {raw:?}"))
}

fn node(fields: &[(&str, &str)], key: &str) -> Result<NodeId, String> {
    Ok(NodeId(num32(fields, key)?))
}

fn string<'a>(fields: &[(&'a str, &'a str)], key: &str) -> Result<&'a str, String> {
    let raw = lookup(fields, key)?;
    raw.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| format!("field {key:?} is not a string: {raw:?}"))
}

fn parse_event_line(line: &str) -> Result<TelemetryEvent, String> {
    let fields = split_fields(line)?;
    let tag = string(&fields, "ev")?;
    let kind = |f: &[(&str, &str)]| -> Result<MessageKind, String> {
        Ok(MessageKind::parse(string(f, "kind")?))
    };
    let ev = match tag {
        "sent" => TelemetryEvent::Sent {
            time: num(&fields, "time")?,
            from: node(&fields, "from")?,
            to: node(&fields, "to")?,
            kind: kind(&fields)?,
        },
        "delivered" => TelemetryEvent::Delivered {
            time: num(&fields, "time")?,
            from: node(&fields, "from")?,
            to: node(&fields, "to")?,
            kind: kind(&fields)?,
        },
        "dropped" => TelemetryEvent::Dropped {
            time: num(&fields, "time")?,
            from: node(&fields, "from")?,
            to: node(&fields, "to")?,
            kind: kind(&fields)?,
        },
        "dead_lettered" => TelemetryEvent::DeadLettered {
            time: num(&fields, "time")?,
            from: node(&fields, "from")?,
            to: node(&fields, "to")?,
            kind: kind(&fields)?,
        },
        "span_sent" => {
            let parent = match lookup(&fields, "parent")? {
                "null" => None,
                raw => Some(SpanId(raw.parse::<u64>().map_err(|_| {
                    format!("field \"parent\" is not a u64 or null: {raw:?}")
                })?)),
            };
            TelemetryEvent::SpanSent {
                time: num(&fields, "time")?,
                span: SpanId(num(&fields, "span")?),
                parent,
                from: node(&fields, "from")?,
                to: node(&fields, "to")?,
                kind: kind(&fields)?,
            }
        }
        "span_delivered" => TelemetryEvent::SpanDelivered {
            time: num(&fields, "time")?,
            span: SpanId(num(&fields, "span")?),
        },
        "span_dropped" => TelemetryEvent::SpanDropped {
            time: num(&fields, "time")?,
            span: SpanId(num(&fields, "span")?),
        },
        "span_dead_lettered" => TelemetryEvent::SpanDeadLettered {
            time: num(&fields, "time")?,
            span: SpanId(num(&fields, "span")?),
        },
        "restarted" => TelemetryEvent::Restarted {
            time: num(&fields, "time")?,
            node: node(&fields, "node")?,
        },
        "timer_fired" => TelemetryEvent::TimerFired {
            time: num(&fields, "time")?,
            node: node(&fields, "node")?,
            tag: num(&fields, "tag")?,
        },
        "prop_sent" => TelemetryEvent::Node {
            time: num(&fields, "time")?,
            node: node(&fields, "node")?,
            event: NodeEvent::PropSent { to: node(&fields, "to")? },
        },
        "rej_sent" => TelemetryEvent::Node {
            time: num(&fields, "time")?,
            node: node(&fields, "node")?,
            event: NodeEvent::RejSent { to: node(&fields, "to")? },
        },
        "retransmit" => TelemetryEvent::Node {
            time: num(&fields, "time")?,
            node: node(&fields, "node")?,
            event: NodeEvent::Retransmit { to: node(&fields, "to")? },
        },
        "edge_locked" => TelemetryEvent::Node {
            time: num(&fields, "time")?,
            node: node(&fields, "node")?,
            event: NodeEvent::EdgeLocked { peer: node(&fields, "peer")? },
        },
        "node_terminated" => TelemetryEvent::Node {
            time: num(&fields, "time")?,
            node: node(&fields, "node")?,
            event: NodeEvent::NodeTerminated,
        },
        "lic_edge_selected" => TelemetryEvent::LicEdgeSelected {
            step: num32(&fields, "step")?,
            edge: EdgeId(num32(&fields, "edge")?),
            a: node(&fields, "a")?,
            b: node(&fields, "b")?,
        },
        "lic_node_saturated" => TelemetryEvent::LicNodeSaturated {
            step: num32(&fields, "step")?,
            node: node(&fields, "node")?,
            discarded: num32(&fields, "discarded")?,
        },
        "lic_cursor_advanced" => TelemetryEvent::LicCursorAdvanced {
            node: node(&fields, "node")?,
            skipped: num32(&fields, "skipped")?,
        },
        "engine_batch_applied" => TelemetryEvent::EngineBatchApplied {
            epoch: num(&fields, "epoch")?,
            events: num32(&fields, "events")?,
            evaluated: num32(&fields, "evaluated")?,
            added: num32(&fields, "added")?,
            removed: num32(&fields, "removed")?,
        },
        "engine_edge_added" => TelemetryEvent::EngineEdgeAdded {
            epoch: num(&fields, "epoch")?,
            edge: EdgeId(num32(&fields, "edge")?),
        },
        "engine_edge_removed" => TelemetryEvent::EngineEdgeRemoved {
            epoch: num(&fields, "epoch")?,
            edge: EdgeId(num32(&fields, "edge")?),
        },
        "engine_reranked" => TelemetryEvent::EngineReranked {
            epoch: num(&fields, "epoch")?,
            edges: num32(&fields, "edges")?,
        },
        "wire_received" => TelemetryEvent::WireFrameReceived {
            time: num(&fields, "time")?,
            conn: num(&fields, "conn")?,
            req: num(&fields, "req")?,
            kind: kind(&fields)?,
            bytes: num32(&fields, "bytes")?,
        },
        "wire_sent" => TelemetryEvent::WireFrameSent {
            time: num(&fields, "time")?,
            conn: num(&fields, "conn")?,
            req: num(&fields, "req")?,
            kind: kind(&fields)?,
            bytes: num32(&fields, "bytes")?,
        },
        other => return Err(format!("unknown event tag {other:?}")),
    };
    Ok(ev)
}

impl Recorder for EventLog {
    #[inline]
    fn is_enabled(&self) -> bool {
        self.enabled
    }

    #[inline]
    fn record(&mut self, ev: TelemetryEvent) {
        if self.enabled {
            self.events.push(ev);
        }
    }
}

/// Fixed-capacity watermark ring size — enough to frame the event ring by
/// epoch for any plausible batch:event ratio without growing with it.
const WATERMARK_CAPACITY: usize = 64;

/// A fixed-capacity ring of [`TelemetryEvent`]s — the *flight recorder*
/// behind the engine's post-mortem forensics (DESIGN.md §12).
///
/// Unlike [`EventLog`], which grows without bound, the ring overwrites its
/// oldest entry once full and counts the overwrite on
/// [`FlightRecorder::dropped`]. Events are `Copy` and the buffer is
/// pre-allocated at construction, so recording never touches the heap —
/// the ring can stay on inside the engine's steady-state zero-allocation
/// batch path (`crates/engine/tests/zero_alloc.rs` asserts it).
///
/// [`FlightRecorder::stamp`] appends an *epoch watermark* — the pair
/// `(epoch, events recorded so far)` — into a small secondary ring, so a
/// post-mortem reader can attribute ring segments to engine epochs even
/// after wraparound.
///
/// A capacity of 0 is the disabled state: [`Recorder::is_enabled`] is
/// `false` and nothing is ever stored (this is also the [`Default`]).
#[derive(Clone, Debug, Default)]
pub struct FlightRecorder {
    cap: usize,
    buf: Vec<TelemetryEvent>,
    /// Oldest entry (== next overwrite target) once the ring is full.
    head: usize,
    /// Events overwritten after the ring filled.
    dropped: u64,
    /// Events ever offered while enabled (monotonic).
    seen: u64,
    watermarks: Vec<(u64, u64)>,
    wm_head: usize,
}

impl FlightRecorder {
    /// A ring holding at most `capacity` events (0 = disabled). All
    /// storage is allocated here, up front.
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            cap: capacity,
            buf: Vec::with_capacity(capacity),
            head: 0,
            dropped: 0,
            seen: 0,
            watermarks: Vec::with_capacity(if capacity == 0 { 0 } else { WATERMARK_CAPACITY }),
            wm_head: 0,
        }
    }

    /// The fixed event capacity chosen at construction.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Events currently retained (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` iff nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Ring fill fraction in `[0, 1]` (0 for a disabled ring).
    pub fn occupancy(&self) -> f64 {
        if self.cap == 0 {
            0.0
        } else {
            self.buf.len() as f64 / self.cap as f64
        }
    }

    /// Events overwritten since construction (the
    /// `recorder_dropped_events` gauge).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events ever recorded while enabled, including those since
    /// overwritten — the sequence numbers watermarks are stamped in.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Stamps an epoch watermark: "after `seen()` events, the engine was
    /// at `epoch`". The watermark ring overwrites oldest-first like the
    /// event ring; no-op while disabled.
    pub fn stamp(&mut self, epoch: u64) {
        if self.cap == 0 {
            return;
        }
        let wm = (epoch, self.seen);
        if self.watermarks.len() < WATERMARK_CAPACITY {
            self.watermarks.push(wm);
        } else {
            self.watermarks[self.wm_head] = wm;
            self.wm_head = (self.wm_head + 1) % WATERMARK_CAPACITY;
        }
    }

    /// Retained epoch watermarks, oldest first.
    pub fn watermarks(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        let (older, newer) = self.watermarks.split_at(self.wm_head);
        newer.iter().chain(older.iter()).copied()
    }

    /// Retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TelemetryEvent> {
        let (older, newer) = self.buf.split_at(self.head);
        newer.iter().chain(older.iter())
    }

    /// Serializes the retained events as JSONL, oldest first — the same
    /// line format as [`EventLog::to_jsonl`], so
    /// [`EventLog::parse_jsonl`] reads it back.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in self.iter() {
            out.push_str(&ev.to_json());
            out.push('\n');
        }
        out
    }

    /// Forgets all retained events and watermarks (capacity and counters
    /// keep their values; no deallocation).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
        self.watermarks.clear();
        self.wm_head = 0;
    }
}

impl Recorder for FlightRecorder {
    #[inline]
    fn is_enabled(&self) -> bool {
        self.cap > 0
    }

    #[inline]
    fn record(&mut self, ev: TelemetryEvent) {
        if self.cap == 0 {
            return;
        }
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
        self.seen += 1;
    }
}

/// Records every event into two sinks at once — how the engine keeps its
/// own [`FlightRecorder`] fed while still honouring whatever recorder the
/// caller passed in. Enabled iff either side is; each side keeps its own
/// disabled fast path.
pub struct Tee<'a, A: Recorder, B: Recorder> {
    a: &'a mut A,
    b: &'a mut B,
}

impl<'a, A: Recorder, B: Recorder> Tee<'a, A, B> {
    /// Tees `a` and `b` together.
    pub fn new(a: &'a mut A, b: &'a mut B) -> Self {
        Tee { a, b }
    }
}

impl<A: Recorder, B: Recorder> Recorder for Tee<'_, A, B> {
    #[inline]
    fn is_enabled(&self) -> bool {
        self.a.is_enabled() || self.b.is_enabled()
    }

    #[inline]
    fn record(&mut self, ev: TelemetryEvent) {
        self.a.record(ev);
        self.b.record(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{MessageKind, NodeEvent};
    use owp_graph::NodeId;

    fn sample(i: u32) -> TelemetryEvent {
        TelemetryEvent::Sent {
            time: i as u64,
            from: NodeId(i),
            to: NodeId(i + 1),
            kind: MessageKind::Prop,
        }
    }

    #[test]
    fn disabled_log_records_nothing_and_never_allocates() {
        let mut log = EventLog::disabled();
        assert!(!log.is_enabled());
        for i in 0..10_000 {
            log.record(sample(i));
        }
        assert!(log.is_empty());
        assert_eq!(log.len(), 0);
        // The zero-allocation guarantee: the backing vector was never
        // created, so its capacity is still 0 after 10k offered events.
        assert_eq!(log.events_capacity(), 0);
        assert_eq!(log.to_jsonl(), "");
    }

    #[test]
    fn null_recorder_is_disabled() {
        let mut r = NullRecorder;
        assert!(!r.is_enabled());
        r.record(sample(1)); // no-op, nothing to observe — must not panic
    }

    #[test]
    fn enabled_log_keeps_order_and_filters() {
        let mut log = EventLog::enabled();
        assert!(log.is_enabled());
        log.record(sample(0));
        log.record(TelemetryEvent::Delivered {
            time: 2,
            from: NodeId(0),
            to: NodeId(1),
            kind: MessageKind::Prop,
        });
        log.record(TelemetryEvent::Node {
            time: 2,
            node: NodeId(1),
            event: NodeEvent::EdgeLocked { peer: NodeId(0) },
        });
        assert_eq!(log.len(), 3);
        assert_eq!(log.events()[0].time(), 0);
        assert_eq!(log.deliveries().count(), 1);
        assert_eq!(log.with_tag("edge_locked").count(), 1);
        assert_eq!(log.to_jsonl().lines().count(), 3);
    }

    #[test]
    fn jsonl_round_trips_every_variant() {
        use crate::event::SpanId;
        use owp_graph::EdgeId;
        let mut log = EventLog::enabled();
        for ev in [
            TelemetryEvent::Sent { time: 0, from: NodeId(1), to: NodeId(2), kind: MessageKind::Prop },
            TelemetryEvent::SpanSent {
                time: 0,
                span: SpanId(0),
                parent: None,
                from: NodeId(1),
                to: NodeId(2),
                kind: MessageKind::Prop,
            },
            TelemetryEvent::Delivered { time: 1, from: NodeId(1), to: NodeId(2), kind: MessageKind::Prop },
            TelemetryEvent::SpanDelivered { time: 1, span: SpanId(0) },
            TelemetryEvent::Sent { time: 1, from: NodeId(2), to: NodeId(1), kind: MessageKind::Rej },
            TelemetryEvent::SpanSent {
                time: 1,
                span: SpanId(1),
                parent: Some(SpanId(0)),
                from: NodeId(2),
                to: NodeId(1),
                kind: MessageKind::Other("TOKEN"),
            },
            TelemetryEvent::SpanDropped { time: 2, span: SpanId(1) },
            TelemetryEvent::Dropped { time: 2, from: NodeId(2), to: NodeId(1), kind: MessageKind::Rej },
            TelemetryEvent::DeadLettered { time: 3, from: NodeId(0), to: NodeId(4), kind: MessageKind::Ack },
            TelemetryEvent::SpanDeadLettered { time: 3, span: SpanId(2) },
            TelemetryEvent::Restarted { time: 3, node: NodeId(4) },
            TelemetryEvent::TimerFired { time: 4, node: NodeId(3), tag: 11 },
            TelemetryEvent::Node { time: 4, node: NodeId(3), event: NodeEvent::PropSent { to: NodeId(5) } },
            TelemetryEvent::Node { time: 4, node: NodeId(3), event: NodeEvent::RejSent { to: NodeId(6) } },
            TelemetryEvent::Node { time: 4, node: NodeId(3), event: NodeEvent::EdgeLocked { peer: NodeId(5) } },
            TelemetryEvent::Node { time: 5, node: NodeId(3), event: NodeEvent::NodeTerminated },
            TelemetryEvent::Node { time: 5, node: NodeId(3), event: NodeEvent::Retransmit { to: NodeId(5) } },
            TelemetryEvent::LicEdgeSelected { step: 0, edge: EdgeId(7), a: NodeId(1), b: NodeId(2) },
            TelemetryEvent::LicNodeSaturated { step: 1, node: NodeId(2), discarded: 3 },
            TelemetryEvent::LicCursorAdvanced { node: NodeId(2), skipped: 2 },
            TelemetryEvent::EngineBatchApplied { epoch: 9, events: 2, evaluated: 10, added: 1, removed: 0 },
            TelemetryEvent::EngineEdgeAdded { epoch: 9, edge: EdgeId(4) },
            TelemetryEvent::EngineEdgeRemoved { epoch: 10, edge: EdgeId(4) },
            TelemetryEvent::EngineReranked { epoch: 10, edges: 6 },
            TelemetryEvent::WireFrameReceived {
                time: 120,
                conn: 3,
                req: 41,
                kind: MessageKind::Other("SUBMIT"),
                bytes: 64,
            },
            TelemetryEvent::WireFrameSent {
                time: 130,
                conn: 3,
                req: 41,
                kind: MessageKind::Other("ACCEPTED"),
                bytes: 9,
            },
        ] {
            log.record(ev);
        }
        let parsed = EventLog::parse_jsonl(&log.to_jsonl()).expect("round trip parses");
        assert_eq!(parsed.events(), log.events());
        // Blank lines are tolerated; garbage is a structured error.
        assert!(EventLog::parse_jsonl("\n\n").expect("blank ok").is_empty());
        let err = EventLog::parse_jsonl("{\"ev\":\"nope\"}").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
    }

    #[test]
    fn mut_ref_forwarding() {
        let mut log = EventLog::enabled();
        fn takes_generic<R: Recorder>(rec: &mut R) {
            rec.record(TelemetryEvent::TimerFired {
                time: 1,
                node: NodeId(0),
                tag: 9,
            });
        }
        takes_generic(&mut &mut log);
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn flight_ring_wraps_and_counts_drops() {
        let mut ring = FlightRecorder::new(4);
        assert!(ring.is_enabled());
        assert_eq!(ring.occupancy(), 0.0);
        for i in 0..3 {
            ring.record(sample(i));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 0);
        assert!((ring.occupancy() - 0.75).abs() < 1e-12);
        for i in 3..10 {
            ring.record(sample(i));
        }
        // Capacity 4, 10 offered: the ring holds the newest 4 and counted
        // the 6 overwrites.
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.dropped(), 6);
        assert_eq!(ring.seen(), 10);
        assert_eq!(ring.occupancy(), 1.0);
        let times: Vec<u64> = ring.iter().map(|e| e.time()).collect();
        assert_eq!(times, vec![6, 7, 8, 9], "oldest-first after wraparound");
        ring.clear();
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 6, "counters survive clear");
    }

    #[test]
    fn flight_ring_jsonl_round_trips_through_event_log() {
        let mut ring = FlightRecorder::new(3);
        for i in 0..5 {
            ring.record(sample(i));
        }
        let parsed = EventLog::parse_jsonl(&ring.to_jsonl()).expect("ring JSONL parses");
        let expected: Vec<TelemetryEvent> = ring.iter().copied().collect();
        assert_eq!(parsed.events(), &expected[..]);
    }

    #[test]
    fn flight_watermarks_frame_the_stream() {
        let mut ring = FlightRecorder::new(8);
        ring.record(sample(0));
        ring.record(sample(1));
        ring.stamp(1);
        ring.record(sample(2));
        ring.stamp(2);
        let wms: Vec<(u64, u64)> = ring.watermarks().collect();
        assert_eq!(wms, vec![(1, 2), (2, 3)]);
        // The watermark ring wraps like the event ring.
        for epoch in 3..(3 + WATERMARK_CAPACITY as u64 + 2) {
            ring.stamp(epoch);
        }
        let wms: Vec<(u64, u64)> = ring.watermarks().collect();
        assert_eq!(wms.len(), WATERMARK_CAPACITY);
        assert_eq!(wms.last().unwrap().0, 3 + WATERMARK_CAPACITY as u64 + 1);
    }

    #[test]
    fn zero_capacity_ring_is_disabled_and_inert() {
        let mut ring = FlightRecorder::default();
        assert!(!ring.is_enabled());
        for i in 0..100 {
            ring.record(sample(i));
        }
        ring.stamp(7);
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 0);
        assert_eq!(ring.seen(), 0);
        assert_eq!(ring.watermarks().count(), 0);
        assert_eq!(ring.to_jsonl(), "");
    }

    #[test]
    fn tee_feeds_both_sinks() {
        let mut ring = FlightRecorder::new(2);
        let mut log = EventLog::disabled();
        {
            let mut tee = Tee::new(&mut ring, &mut log);
            assert!(tee.is_enabled(), "enabled ring dominates a disabled log");
            tee.record(sample(1));
        }
        assert_eq!(ring.len(), 1);
        assert!(log.is_empty(), "disabled side stays inert");
        let mut null = NullRecorder;
        let mut off = FlightRecorder::default();
        assert!(!Tee::new(&mut off, &mut null).is_enabled());
    }
}
