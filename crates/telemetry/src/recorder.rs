//! Event sinks: the [`Recorder`] trait and its two implementations.
//!
//! Hot loops are instrumented in one of two dispatch styles, both free of
//! `dyn`:
//!
//! * **generic** — `fn lic_traced<R: Recorder>(..., rec: &mut R)`: with
//!   [`NullRecorder`] every `record` call monomorphizes to nothing, so the
//!   untraced entry point compiles to the identical machine code it had
//!   before instrumentation;
//! * **enum-dispatched** — the engines own an [`EventLog`] whose disabled
//!   state is a single predictable branch per event and never allocates
//!   (the event vector is only created on first enabled push).

use crate::event::TelemetryEvent;

/// A sink for [`TelemetryEvent`]s.
///
/// Call sites that would do extra work *building* an event (counting
/// skipped entries, cloning sets) should guard on [`Recorder::is_enabled`]
/// first; `record` itself must already be free when disabled.
pub trait Recorder {
    /// `true` iff recorded events are kept. Constant-foldable for
    /// [`NullRecorder`].
    fn is_enabled(&self) -> bool;

    /// Records one event. Must be a no-op when disabled.
    fn record(&mut self, ev: TelemetryEvent);
}

/// Forwarding impl so instrumented functions can be handed `&mut log`
/// without giving up the caller's ownership.
impl<R: Recorder + ?Sized> Recorder for &mut R {
    #[inline(always)]
    fn is_enabled(&self) -> bool {
        (**self).is_enabled()
    }

    #[inline(always)]
    fn record(&mut self, ev: TelemetryEvent) {
        (**self).record(ev)
    }
}

/// The zero-cost disabled recorder: generic call sites instantiated with
/// `NullRecorder` compile to the uninstrumented code.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    #[inline(always)]
    fn is_enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn record(&mut self, _ev: TelemetryEvent) {}
}

/// An append-only in-memory event log with a runtime on/off switch —
/// the enum-dispatched recorder the simulation engines own (they cannot be
/// generic over tracing without bifurcating every caller).
///
/// Disabled is the default and costs one branch per offered event; the
/// backing vector is not even allocated until the first enabled push, so a
/// disabled log performs **zero** heap allocation no matter how many
/// events are offered (asserted by the capacity test below).
#[derive(Clone, Debug, Default)]
pub struct EventLog {
    enabled: bool,
    events: Vec<TelemetryEvent>,
}

impl EventLog {
    /// Creates an enabled log.
    pub fn enabled() -> Self {
        EventLog {
            enabled: true,
            events: Vec::new(),
        }
    }

    /// Creates a disabled log (records nothing, allocates nothing).
    pub fn disabled() -> Self {
        EventLog::default()
    }

    /// The recorded events, in occurrence order.
    pub fn events(&self) -> &[TelemetryEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` iff nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Capacity of the backing vector — 0 for a log that never recorded,
    /// which is how the zero-allocation guarantee is asserted in tests.
    pub fn events_capacity(&self) -> usize {
        self.events.capacity()
    }

    /// Delivered-message events only.
    pub fn deliveries(&self) -> impl Iterator<Item = &TelemetryEvent> {
        self.events
            .iter()
            .filter(|e| matches!(e, TelemetryEvent::Delivered { .. }))
    }

    /// Events matching a tag (see [`TelemetryEvent::tag`]).
    pub fn with_tag<'a>(&'a self, tag: &'a str) -> impl Iterator<Item = &'a TelemetryEvent> {
        self.events.iter().filter(move |e| e.tag() == tag)
    }

    /// Serializes the whole log as JSONL (one event object per line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(&ev.to_json());
            out.push('\n');
        }
        out
    }
}

impl Recorder for EventLog {
    #[inline]
    fn is_enabled(&self) -> bool {
        self.enabled
    }

    #[inline]
    fn record(&mut self, ev: TelemetryEvent) {
        if self.enabled {
            self.events.push(ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{MessageKind, NodeEvent};
    use owp_graph::NodeId;

    fn sample(i: u32) -> TelemetryEvent {
        TelemetryEvent::Sent {
            time: i as u64,
            from: NodeId(i),
            to: NodeId(i + 1),
            kind: MessageKind::Prop,
        }
    }

    #[test]
    fn disabled_log_records_nothing_and_never_allocates() {
        let mut log = EventLog::disabled();
        assert!(!log.is_enabled());
        for i in 0..10_000 {
            log.record(sample(i));
        }
        assert!(log.is_empty());
        assert_eq!(log.len(), 0);
        // The zero-allocation guarantee: the backing vector was never
        // created, so its capacity is still 0 after 10k offered events.
        assert_eq!(log.events_capacity(), 0);
        assert_eq!(log.to_jsonl(), "");
    }

    #[test]
    fn null_recorder_is_disabled() {
        let mut r = NullRecorder;
        assert!(!r.is_enabled());
        r.record(sample(1)); // no-op, nothing to observe — must not panic
    }

    #[test]
    fn enabled_log_keeps_order_and_filters() {
        let mut log = EventLog::enabled();
        assert!(log.is_enabled());
        log.record(sample(0));
        log.record(TelemetryEvent::Delivered {
            time: 2,
            from: NodeId(0),
            to: NodeId(1),
            kind: MessageKind::Prop,
        });
        log.record(TelemetryEvent::Node {
            time: 2,
            node: NodeId(1),
            event: NodeEvent::EdgeLocked { peer: NodeId(0) },
        });
        assert_eq!(log.len(), 3);
        assert_eq!(log.events()[0].time(), 0);
        assert_eq!(log.deliveries().count(), 1);
        assert_eq!(log.with_tag("edge_locked").count(), 1);
        assert_eq!(log.to_jsonl().lines().count(), 3);
    }

    #[test]
    fn mut_ref_forwarding() {
        let mut log = EventLog::enabled();
        fn takes_generic<R: Recorder>(rec: &mut R) {
            rec.record(TelemetryEvent::TimerFired {
                time: 1,
                node: NodeId(0),
                tag: 9,
            });
        }
        takes_generic(&mut &mut log);
        assert_eq!(log.len(), 1);
    }
}
