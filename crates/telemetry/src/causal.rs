//! Happens-before analysis over span-annotated traces.
//!
//! The engines stamp every in-flight message with a [`SpanId`] and the span
//! of the delivery whose handler emitted it (its *causal parent*; sends from
//! `on_start` are roots, and sends from a timer callback inherit the parent
//! that armed the timer). Because each span has at most one parent, the
//! happens-before relation of one run is a **forest**: chains of
//! PROP→REJ→re-PROP propagation, exactly the "communication cycles" object
//! of the paper's Lemma 5.
//!
//! [`CausalDag`] reconstructs that forest from an [`EventLog`] (or a parsed
//! trace file) and offers:
//!
//! * [`CausalDag::verify`] — an **empirical Lemma 5 certificate**: checks
//!   that every parent exists, was delivered no later than its child was
//!   sent, and that no parent chain cycles. Live traces always pass (span
//!   ids are assigned monotonically, so a child's id exceeds its parent's);
//!   a tampered or corrupted trace yields structured
//!   [`CausalViolation`]s — never a panic — which `owp-metrics`' auditor
//!   converts into its violation stream.
//! * [`CausalDag::critical_path`] — the causal chain that finished last,
//!   with per-hop latency attribution split into link flight time and
//!   handler/queue wait, answering *why* a run took as long as it did.
//! * [`CausalDag::edge_lifecycles`] — per node-pair first-PROP → final
//!   lock/reject/unresolved accounting.
//! * [`CausalDag::kind_fanout`] — how many child messages of each kind
//!   every parent kind caused (PROP→REJ, REJ→PROP, ...).
//! * [`CausalDag::to_dot`] — Graphviz export of selected chains.

use crate::event::{MessageKind, SpanId, TelemetryEvent};
use crate::recorder::EventLog;
use owp_graph::NodeId;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Terminal state of one span.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanOutcome {
    /// Sent but neither delivered, dropped, nor dead-lettered in the trace.
    InFlight,
    /// Delivered to the destination handler.
    Delivered,
    /// Dropped by fault injection.
    Dropped,
    /// Discarded at a crashed destination.
    DeadLettered,
}

/// Everything the trace records about one span.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanInfo {
    /// The span's id.
    pub span: SpanId,
    /// Causal parent (the delivery whose handler sent this), if any.
    pub parent: Option<SpanId>,
    /// Sender.
    pub from: NodeId,
    /// Destination.
    pub to: NodeId,
    /// Message class.
    pub kind: MessageKind,
    /// Send time (ticks / rounds).
    pub sent: u64,
    /// Delivery time, if the span was delivered.
    pub delivered: Option<u64>,
    /// Terminal state.
    pub outcome: SpanOutcome,
}

impl SpanInfo {
    /// When the span stopped mattering: delivery time if delivered, send
    /// time otherwise.
    pub fn completion(&self) -> u64 {
        self.delivered.unwrap_or(self.sent)
    }
}

/// Classes of causal-consistency violation a trace can exhibit. A live
/// engine can produce none of these; they certify trace integrity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CausalViolationKind {
    /// Two `span_sent` records share a span id.
    DuplicateSpan,
    /// A lifecycle event (`span_delivered`/...) names an unknown span.
    UnknownSpan,
    /// A parent reference names a span with no `span_sent` record.
    UnknownParent,
    /// A span claims itself as parent.
    SelfParent,
    /// A parent chain returns to a span already on it — the communication
    /// cycle Lemma 5 proves impossible.
    CycleDetected,
    /// A child was sent before its parent was delivered (or the parent was
    /// never delivered at all, so its handler cannot have run).
    TemporalInversion,
}

impl CausalViolationKind {
    /// Short stable tag for reports.
    pub fn tag(self) -> &'static str {
        match self {
            CausalViolationKind::DuplicateSpan => "duplicate_span",
            CausalViolationKind::UnknownSpan => "unknown_span",
            CausalViolationKind::UnknownParent => "unknown_parent",
            CausalViolationKind::SelfParent => "self_parent",
            CausalViolationKind::CycleDetected => "cycle_detected",
            CausalViolationKind::TemporalInversion => "temporal_inversion",
        }
    }
}

/// One structured causal-consistency violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CausalViolation {
    /// What class of inconsistency.
    pub kind: CausalViolationKind,
    /// The span the violation is anchored to.
    pub span: SpanId,
    /// Human-readable specifics.
    pub detail: String,
}

impl std::fmt::Display for CausalViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at {}: {}", self.kind.tag(), self.span, self.detail)
    }
}

/// One hop of a critical path, with its latency split.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CriticalHop {
    /// The span of this hop.
    pub span: SpanId,
    /// Sender.
    pub from: NodeId,
    /// Destination.
    pub to: NodeId,
    /// Message class.
    pub kind: MessageKind,
    /// Send time.
    pub sent: u64,
    /// Delivery time, if delivered.
    pub delivered: Option<u64>,
    /// Ticks between the parent's delivery and this send (handler/queue
    /// wait; 0 for roots).
    pub wait: u64,
    /// Ticks in flight (delivery − send; 0 if never delivered).
    pub flight: u64,
}

/// A root-to-leaf causal chain, root first.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CriticalPath {
    /// The chain's hops, root first.
    pub hops: Vec<CriticalHop>,
    /// Completion time of the final hop.
    pub end_time: u64,
}

impl CriticalPath {
    /// Number of hops (messages) on the chain.
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// `true` iff the path has no hops (empty trace).
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }

    /// Total attributed latency: Σ (wait + flight) over the hops.
    pub fn total_latency(&self) -> u64 {
        self.hops.iter().map(|h| h.wait + h.flight).sum()
    }
}

/// Final state of one node pair's negotiation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeOutcome {
    /// Mutual PROPs delivered: the edge locked (Algorithm 1 lines 12–14).
    Locked,
    /// A REJ was delivered on the pair.
    Rejected,
    /// Neither: messages lost, in flight, or one-sided.
    Unresolved,
}

impl EdgeOutcome {
    /// Short stable label.
    pub fn label(self) -> &'static str {
        match self {
            EdgeOutcome::Locked => "locked",
            EdgeOutcome::Rejected => "rejected",
            EdgeOutcome::Unresolved => "unresolved",
        }
    }
}

/// First-PROP → resolution accounting for one node pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdgeLifecycle {
    /// Smaller endpoint.
    pub a: NodeId,
    /// Larger endpoint.
    pub b: NodeId,
    /// Send time of the pair's first PROP.
    pub first_prop: u64,
    /// Time the outcome was decided (first delivered REJ, or the delivery
    /// completing the mutual PROP pair); `None` while unresolved.
    pub resolved_at: Option<u64>,
    /// The outcome.
    pub outcome: EdgeOutcome,
    /// Total spans exchanged on the pair (both directions, all kinds).
    pub spans: u32,
}

/// The happens-before forest of one run. See the module docs.
#[derive(Clone, Debug, Default)]
pub struct CausalDag {
    spans: Vec<SpanInfo>,
    index: BTreeMap<u64, usize>,
    build_violations: Vec<CausalViolation>,
}

impl CausalDag {
    /// Reconstructs the DAG from a recorded log. Never panics: structural
    /// problems (duplicate ids, lifecycle events naming unknown spans) are
    /// kept and surface through [`CausalDag::verify`].
    pub fn from_log(log: &EventLog) -> CausalDag {
        let mut dag = CausalDag::default();
        for ev in log.events() {
            match *ev {
                TelemetryEvent::SpanSent { time, span, parent, from, to, kind } => {
                    if dag.index.contains_key(&span.0) {
                        dag.build_violations.push(CausalViolation {
                            kind: CausalViolationKind::DuplicateSpan,
                            span,
                            detail: format!("second span_sent at time {time}"),
                        });
                        continue;
                    }
                    dag.index.insert(span.0, dag.spans.len());
                    dag.spans.push(SpanInfo {
                        span,
                        parent,
                        from,
                        to,
                        kind,
                        sent: time,
                        delivered: None,
                        outcome: SpanOutcome::InFlight,
                    });
                }
                TelemetryEvent::SpanDelivered { time, span } => {
                    dag.resolve(span, time, SpanOutcome::Delivered, true)
                }
                TelemetryEvent::SpanDropped { time, span } => {
                    dag.resolve(span, time, SpanOutcome::Dropped, false)
                }
                TelemetryEvent::SpanDeadLettered { time, span } => {
                    dag.resolve(span, time, SpanOutcome::DeadLettered, false)
                }
                _ => {}
            }
        }
        dag
    }

    fn resolve(&mut self, span: SpanId, time: u64, outcome: SpanOutcome, delivered: bool) {
        match self.index.get(&span.0) {
            Some(&i) => {
                let info = &mut self.spans[i];
                info.outcome = outcome;
                if delivered {
                    info.delivered = Some(time);
                }
            }
            None => self.build_violations.push(CausalViolation {
                kind: CausalViolationKind::UnknownSpan,
                span,
                detail: format!("lifecycle event at time {time} for unknown span"),
            }),
        }
    }

    /// All spans, in send order.
    pub fn spans(&self) -> &[SpanInfo] {
        &self.spans
    }

    /// Number of spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// `true` iff the trace recorded no spans.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Looks a span up by id.
    pub fn span(&self, id: SpanId) -> Option<&SpanInfo> {
        self.index.get(&id.0).map(|&i| &self.spans[i])
    }

    /// Number of root spans (sends with no causal parent).
    pub fn roots(&self) -> usize {
        self.spans.iter().filter(|s| s.parent.is_none()).count()
    }

    /// The empirical Lemma 5 certificate: an empty result certifies the
    /// trace's happens-before relation is a well-formed acyclic forest
    /// consistent with the clocks; otherwise every inconsistency is
    /// reported as a structured violation.
    pub fn verify(&self) -> Vec<CausalViolation> {
        let mut out = self.build_violations.clone();
        // Parent existence, self-loops, temporal consistency.
        for s in &self.spans {
            let Some(p) = s.parent else { continue };
            if p == s.span {
                out.push(CausalViolation {
                    kind: CausalViolationKind::SelfParent,
                    span: s.span,
                    detail: "span lists itself as causal parent".into(),
                });
                continue;
            }
            let Some(pi) = self.span(p) else {
                out.push(CausalViolation {
                    kind: CausalViolationKind::UnknownParent,
                    span: s.span,
                    detail: format!("parent {p} has no span_sent record"),
                });
                continue;
            };
            match pi.delivered {
                None => out.push(CausalViolation {
                    kind: CausalViolationKind::TemporalInversion,
                    span: s.span,
                    detail: format!("parent {p} was never delivered, yet its handler sent this"),
                }),
                Some(pd) if pd > s.sent => out.push(CausalViolation {
                    kind: CausalViolationKind::TemporalInversion,
                    span: s.span,
                    detail: format!("sent at {} before parent {p} was delivered at {pd}", s.sent),
                }),
                Some(_) => {}
            }
        }
        // Parent-chain cycle detection with three-color marking:
        // 0 = unvisited, 1 = on the current walk, 2 = proven acyclic,
        // 3 = on (or leading into) a cycle.
        let mut color = vec![0u8; self.spans.len()];
        for start in 0..self.spans.len() {
            if color[start] != 0 {
                continue;
            }
            let mut walk = Vec::new();
            let mut cur = Some(start);
            let verdict = loop {
                let Some(i) = cur else { break 2 };
                match color[i] {
                    1 => {
                        // `i` is on the current walk: a genuine new cycle.
                        let anchor = self.spans[i].span;
                        let cycle: Vec<String> = walk
                            .iter()
                            .skip_while(|&&w| w != i)
                            .map(|&w: &usize| self.spans[w].span.to_string())
                            .collect();
                        out.push(CausalViolation {
                            kind: CausalViolationKind::CycleDetected,
                            span: anchor,
                            detail: format!("parent chain cycles: {}", cycle.join(" <- ")),
                        });
                        break 3;
                    }
                    2 => break 2,
                    3 => break 3,
                    _ => {
                        color[i] = 1;
                        walk.push(i);
                        cur = self.spans[i]
                            .parent
                            .and_then(|p| self.index.get(&p.0).copied());
                    }
                }
            };
            for w in walk {
                color[w] = verdict;
            }
        }
        out
    }

    /// `true` iff [`CausalDag::verify`] finds nothing.
    pub fn is_certified(&self) -> bool {
        self.verify().is_empty()
    }

    /// Walks the parent chain from `leaf` towards a root, building the hop
    /// list root-first. Bounded by the span count so cyclic (tampered)
    /// traces terminate instead of spinning.
    fn chain_from(&self, leaf: usize) -> CriticalPath {
        let mut rev = Vec::new();
        let mut cur = Some(leaf);
        while let Some(i) = cur {
            if rev.len() > self.spans.len() {
                break; // cycle guard; verify() reports the actual cycle
            }
            rev.push(i);
            cur = self.spans[i].parent.and_then(|p| self.index.get(&p.0).copied());
        }
        rev.reverse();
        let mut hops = Vec::with_capacity(rev.len());
        let mut prev_delivered: Option<u64> = None;
        for &i in &rev {
            let s = &self.spans[i];
            let wait = prev_delivered.map_or(0, |pd| s.sent.saturating_sub(pd));
            let flight = s.delivered.map_or(0, |d| d.saturating_sub(s.sent));
            hops.push(CriticalHop {
                span: s.span,
                from: s.from,
                to: s.to,
                kind: s.kind,
                sent: s.sent,
                delivered: s.delivered,
                wait,
                flight,
            });
            prev_delivered = s.delivered.or(prev_delivered);
        }
        let end_time = rev.last().map_or(0, |&i| self.spans[i].completion());
        CriticalPath { hops, end_time }
    }

    /// Deterministic ranking of chain endpoints: latest completion first,
    /// then longer chains, then smaller span id.
    fn ranked_leaves(&self) -> Vec<usize> {
        let depths = self.depths();
        let mut order: Vec<usize> = (0..self.spans.len()).collect();
        order.sort_by(|&a, &b| {
            self.spans[b]
                .completion()
                .cmp(&self.spans[a].completion())
                .then(depths[b].cmp(&depths[a]))
                .then(self.spans[a].span.cmp(&self.spans[b].span))
        });
        order
    }

    /// Per-span chain depth (root = 1), memoized, cycle-safe (spans on a
    /// cycle report the bounded walk length).
    fn depths(&self) -> Vec<u32> {
        let mut depth = vec![0u32; self.spans.len()];
        for start in 0..self.spans.len() {
            if depth[start] != 0 {
                continue;
            }
            let mut walk = vec![start];
            let mut base = 0u32;
            loop {
                let i = *walk.last().expect("walk non-empty");
                let parent = self.spans[i].parent.and_then(|p| self.index.get(&p.0).copied());
                match parent {
                    Some(p) if depth[p] != 0 => {
                        base = depth[p];
                        break;
                    }
                    Some(p) if walk.contains(&p) => break, // cycle: cut it off
                    Some(p) if walk.len() <= self.spans.len() => walk.push(p),
                    _ => break,
                }
            }
            for (k, &i) in walk.iter().rev().enumerate() {
                depth[i] = base + k as u32 + 1;
            }
        }
        depth
    }

    /// The critical path: the causal chain ending at the span that
    /// completed last (ties broken towards longer chains, then smaller
    /// span ids, so seeded runs reproduce exactly).
    pub fn critical_path(&self) -> CriticalPath {
        match self.ranked_leaves().first() {
            Some(&leaf) => self.chain_from(leaf),
            None => CriticalPath::default(),
        }
    }

    /// The `k` highest-ranked causal chains with pairwise-distinct
    /// endpoints (successive paths skip endpoints already covered by an
    /// earlier path, so the list shows distinct serialization tails).
    pub fn top_critical_paths(&self, k: usize) -> Vec<CriticalPath> {
        let mut covered = vec![false; self.spans.len()];
        let mut out = Vec::new();
        for leaf in self.ranked_leaves() {
            if out.len() == k {
                break;
            }
            if covered[leaf] {
                continue;
            }
            let path = self.chain_from(leaf);
            for hop in &path.hops {
                if let Some(&i) = self.index.get(&hop.span.0) {
                    covered[i] = true;
                }
            }
            out.push(path);
        }
        out
    }

    /// Length (hops) of the critical path — the `lid_critical_path_len`
    /// gauge's value.
    pub fn critical_path_len(&self) -> usize {
        self.critical_path().len()
    }

    /// Maximum chain depth over all spans (0 for an empty trace). Equals
    /// `critical_path().len()` when the latest-completing span also ends
    /// the deepest chain, but can exceed it under non-unit latencies.
    pub fn max_depth(&self) -> u32 {
        self.depths().into_iter().max().unwrap_or(0)
    }

    /// Parent-kind → child-kind causation counts, keyed by kind label.
    pub fn kind_fanout(&self) -> BTreeMap<(&'static str, &'static str), u64> {
        let mut out = BTreeMap::new();
        for s in &self.spans {
            let Some(p) = s.parent.and_then(|p| self.span(p)) else { continue };
            *out.entry((p.kind.label(), s.kind.label())).or_insert(0) += 1;
        }
        out
    }

    /// Largest number of children any single span caused (0 if no span has
    /// children).
    pub fn max_fanout(&self) -> u32 {
        let mut children: BTreeMap<u64, u32> = BTreeMap::new();
        for s in &self.spans {
            if let Some(p) = s.parent {
                *children.entry(p.0).or_insert(0) += 1;
            }
        }
        children.into_values().max().unwrap_or(0)
    }

    /// Per node-pair lifecycle: first PROP send → final lock / reject /
    /// unresolved, derived purely from span records (undirected pairs,
    /// smaller endpoint first; sorted by (a, b)).
    pub fn edge_lifecycles(&self) -> Vec<EdgeLifecycle> {
        struct Acc {
            first_prop: Option<u64>,
            prop_delivered: [Option<u64>; 2], // [a→b, b→a] first delivered PROP
            rej_delivered: Option<u64>,
            spans: u32,
        }
        let mut acc: BTreeMap<(u32, u32), Acc> = BTreeMap::new();
        for s in &self.spans {
            let (a, b) = if s.from.0 <= s.to.0 { (s.from.0, s.to.0) } else { (s.to.0, s.from.0) };
            let e = acc.entry((a, b)).or_insert(Acc {
                first_prop: None,
                prop_delivered: [None, None],
                rej_delivered: None,
                spans: 0,
            });
            e.spans += 1;
            match s.kind {
                MessageKind::Prop => {
                    e.first_prop = Some(e.first_prop.map_or(s.sent, |t: u64| t.min(s.sent)));
                    if let Some(d) = s.delivered {
                        let dir = usize::from(s.from.0 > s.to.0);
                        e.prop_delivered[dir] =
                            Some(e.prop_delivered[dir].map_or(d, |t: u64| t.min(d)));
                    }
                }
                MessageKind::Rej => {
                    if let Some(d) = s.delivered {
                        e.rej_delivered =
                            Some(e.rej_delivered.map_or(d, |t: u64| t.min(d)));
                    }
                }
                _ => {}
            }
        }
        acc.into_iter()
            .filter(|(_, e)| e.first_prop.is_some())
            .map(|((a, b), e)| {
                let (outcome, resolved_at) = match (e.rej_delivered, e.prop_delivered) {
                    (Some(r), _) => (EdgeOutcome::Rejected, Some(r)),
                    (None, [Some(x), Some(y)]) => (EdgeOutcome::Locked, Some(x.max(y))),
                    _ => (EdgeOutcome::Unresolved, None),
                };
                EdgeLifecycle {
                    a: NodeId(a),
                    b: NodeId(b),
                    first_prop: e.first_prop.expect("filtered above"),
                    resolved_at,
                    outcome,
                    spans: e.spans,
                }
            })
            .collect()
    }

    /// Graphviz DOT rendering of the given chains (typically
    /// [`CausalDag::top_critical_paths`]): one node per span, one edge per
    /// parent link, deduplicated across overlapping paths.
    pub fn to_dot(&self, paths: &[CriticalPath]) -> String {
        let mut nodes: BTreeMap<u64, String> = BTreeMap::new();
        let mut edges: Vec<(u64, u64)> = Vec::new();
        for path in paths {
            for pair in path.hops.windows(2) {
                edges.push((pair[0].span.0, pair[1].span.0));
            }
            for hop in &path.hops {
                nodes.entry(hop.span.0).or_insert_with(|| {
                    let when = match hop.delivered {
                        Some(d) => format!("@{}..{d}", hop.sent),
                        None => format!("@{}..?", hop.sent),
                    };
                    format!("{} {}->{} {when}", hop.kind.label(), hop.from.0, hop.to.0)
                });
            }
        }
        edges.sort_unstable();
        edges.dedup();
        let mut out = String::from("digraph causal {\n  rankdir=LR;\n  node [shape=box];\n");
        for (id, label) in &nodes {
            let _ = writeln!(out, "  s{id} [label=\"s{id}\\n{label}\"];");
        }
        for (a, b) in &edges {
            let _ = writeln!(out, "  s{a} -> s{b};");
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    fn sent(time: u64, span: u64, parent: Option<u64>, from: u32, to: u32, kind: MessageKind) -> TelemetryEvent {
        TelemetryEvent::SpanSent {
            time,
            span: SpanId(span),
            parent: parent.map(SpanId),
            from: NodeId(from),
            to: NodeId(to),
            kind,
        }
    }

    fn delivered(time: u64, span: u64) -> TelemetryEvent {
        TelemetryEvent::SpanDelivered { time, span: SpanId(span) }
    }

    /// 0 --PROP--> 1 (s0), 1 --REJ--> 0 (s1, parent s0),
    /// 0 --PROP--> 2 (s2, parent s1), 2 --PROP--> 0 (s3, root) locks {0,2}.
    fn chain_log() -> EventLog {
        let mut log = EventLog::enabled();
        log.record(sent(0, 0, None, 0, 1, MessageKind::Prop));
        log.record(sent(0, 1, None, 2, 0, MessageKind::Prop));
        log.record(delivered(1, 0));
        log.record(sent(1, 2, Some(0), 1, 0, MessageKind::Rej));
        log.record(delivered(1, 1));
        log.record(delivered(3, 2));
        log.record(sent(3, 3, Some(2), 0, 2, MessageKind::Prop));
        log.record(delivered(5, 3));
        log
    }

    #[test]
    fn builds_and_certifies_clean_chain() {
        let dag = CausalDag::from_log(&chain_log());
        assert_eq!(dag.len(), 4);
        assert_eq!(dag.roots(), 2);
        assert!(dag.is_certified());
        assert_eq!(dag.max_depth(), 3);
        assert_eq!(dag.max_fanout(), 1);
        let fan = dag.kind_fanout();
        assert_eq!(fan.get(&("PROP", "REJ")), Some(&1));
        assert_eq!(fan.get(&("REJ", "PROP")), Some(&1));
    }

    #[test]
    fn critical_path_attributes_latency() {
        let dag = CausalDag::from_log(&chain_log());
        let path = dag.critical_path();
        assert_eq!(path.len(), 3);
        assert_eq!(path.end_time, 5);
        let spans: Vec<u64> = path.hops.iter().map(|h| h.span.0).collect();
        assert_eq!(spans, vec![0, 2, 3]);
        // s0: root, wait 0, flight 1; s2: sent at 1 right after s0's
        // delivery, flight 2; s3: sent at 3 on s2's delivery, flight 2.
        assert_eq!(path.hops[0].wait, 0);
        assert_eq!(path.hops[0].flight, 1);
        assert_eq!(path.hops[1].wait, 0);
        assert_eq!(path.hops[1].flight, 2);
        assert_eq!(path.hops[2].flight, 2);
        assert_eq!(path.total_latency(), 5);
        assert_eq!(dag.critical_path_len(), 3);
        // Top-2 returns the main chain plus the disjoint root s1.
        let top = dag.top_critical_paths(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].len(), 3);
        assert_eq!(top[1].hops[0].span, SpanId(1));
    }

    #[test]
    fn edge_lifecycles_classify_outcomes() {
        let dag = CausalDag::from_log(&chain_log());
        let lives = dag.edge_lifecycles();
        assert_eq!(lives.len(), 2);
        // {0,1}: PROP answered by REJ.
        assert_eq!((lives[0].a, lives[0].b), (NodeId(0), NodeId(1)));
        assert_eq!(lives[0].outcome, EdgeOutcome::Rejected);
        assert_eq!(lives[0].resolved_at, Some(3));
        // {0,2}: mutual PROPs delivered -> locked at the later delivery.
        assert_eq!((lives[1].a, lives[1].b), (NodeId(0), NodeId(2)));
        assert_eq!(lives[1].outcome, EdgeOutcome::Locked);
        assert_eq!(lives[1].first_prop, 0);
        assert_eq!(lives[1].resolved_at, Some(5));
        assert_eq!(lives[1].spans, 2);
    }

    #[test]
    fn tampered_cycle_is_a_violation_not_a_panic() {
        let mut log = EventLog::enabled();
        // s5 and s6 claim each other as parents — impossible live, because
        // ids are assigned monotonically at send time.
        log.record(sent(0, 5, Some(6), 0, 1, MessageKind::Prop));
        log.record(delivered(1, 5));
        log.record(sent(1, 6, Some(5), 1, 0, MessageKind::Rej));
        log.record(delivered(2, 6));
        let dag = CausalDag::from_log(&log);
        let violations = dag.verify();
        assert!(violations.iter().any(|v| v.kind == CausalViolationKind::CycleDetected));
        // Temporal inversion too: s5 was sent at 0, its parent s6 delivered at 2.
        assert!(violations.iter().any(|v| v.kind == CausalViolationKind::TemporalInversion));
        assert!(!dag.is_certified());
        // Analyses stay total on the tampered trace.
        let _ = dag.critical_path();
        let _ = dag.max_depth();
    }

    #[test]
    fn structural_violations_are_reported() {
        let mut log = EventLog::enabled();
        log.record(sent(0, 1, Some(1), 0, 1, MessageKind::Prop)); // self-parent
        log.record(sent(0, 1, None, 0, 1, MessageKind::Prop)); // duplicate id
        log.record(sent(0, 2, Some(99), 0, 1, MessageKind::Prop)); // unknown parent
        log.record(delivered(1, 42)); // unknown span
        let dag = CausalDag::from_log(&log);
        let kinds: Vec<CausalViolationKind> = dag.verify().into_iter().map(|v| v.kind).collect();
        assert!(kinds.contains(&CausalViolationKind::SelfParent));
        assert!(kinds.contains(&CausalViolationKind::DuplicateSpan));
        assert!(kinds.contains(&CausalViolationKind::UnknownParent));
        assert!(kinds.contains(&CausalViolationKind::UnknownSpan));
    }

    #[test]
    fn undelivered_parent_is_temporal_inversion() {
        let mut log = EventLog::enabled();
        log.record(sent(0, 0, None, 0, 1, MessageKind::Prop));
        // s0 never delivered, yet s1 claims it as parent.
        log.record(sent(1, 1, Some(0), 1, 0, MessageKind::Rej));
        let dag = CausalDag::from_log(&log);
        let violations = dag.verify();
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].kind, CausalViolationKind::TemporalInversion);
    }

    #[test]
    fn dot_export_renders_chains() {
        let dag = CausalDag::from_log(&chain_log());
        let dot = dag.to_dot(&dag.top_critical_paths(2));
        assert!(dot.starts_with("digraph causal {"));
        assert!(dot.contains("s0 -> s2;"));
        assert!(dot.contains("s2 -> s3;"));
        assert!(dot.contains("PROP 0->1"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn empty_log_yields_empty_dag() {
        let dag = CausalDag::from_log(&EventLog::disabled());
        assert!(dag.is_empty());
        assert!(dag.is_certified());
        assert!(dag.critical_path().is_empty());
        assert_eq!(dag.critical_path_len(), 0);
        assert_eq!(dag.max_depth(), 0);
        assert!(dag.edge_lifecycles().is_empty());
        assert!(dag.top_critical_paths(3).is_empty());
    }
}
