//! Phase profiling: lightweight scoped timers aggregated per phase.
//!
//! A [`PhaseProfile`] answers "where do the milliseconds live" for the
//! construction pipeline (weight computation → edge ordering → CSR build →
//! selection loop → simulation) without a sampling profiler. Timers are
//! monotonic ([`std::time::Instant`]), hierarchical (nested scopes get
//! `/`-joined paths) and aggregated: re-entering a phase accumulates into
//! its existing row.
//!
//! This is *coarse* instrumentation for experiment runners and benches —
//! a begin/end pair costs two `Instant::now()` calls, so it wraps phases,
//! never per-edge work.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Aggregated statistics of one phase (identified by its full path).
#[derive(Clone, Debug)]
pub struct PhaseEntry {
    /// `/`-joined hierarchical phase name, e.g. `"build/weights"`.
    pub path: String,
    /// Times the phase was entered.
    pub calls: u64,
    /// Total time spent inside (including nested phases).
    pub total: Duration,
}

/// Proof token returned by [`PhaseProfile::begin`]; hand it back to
/// [`PhaseProfile::end`] to close the scope. Scopes must nest properly
/// (LIFO) — ending out of order panics.
#[derive(Debug)]
#[must_use = "a begun phase must be ended"]
pub struct PhaseToken {
    entry: usize,
    start: Instant,
}

/// Hierarchical aggregating phase profiler.
#[derive(Clone, Debug, Default)]
pub struct PhaseProfile {
    entries: Vec<PhaseEntry>,
    /// Indices into `entries` of the currently open scopes, innermost last.
    open: Vec<usize>,
}

impl PhaseProfile {
    /// Empty profile.
    pub fn new() -> Self {
        PhaseProfile::default()
    }

    fn current_path(&self) -> Option<&str> {
        self.open.last().map(|&i| self.entries[i].path.as_str())
    }

    fn entry_index(&mut self, path: String) -> usize {
        if let Some(i) = self.entries.iter().position(|e| e.path == path) {
            i
        } else {
            self.entries.push(PhaseEntry {
                path,
                calls: 0,
                total: Duration::ZERO,
            });
            self.entries.len() - 1
        }
    }

    /// Opens a phase scope named `name` under the currently open phase
    /// (if any). Returns the token that closes it.
    pub fn begin(&mut self, name: &str) -> PhaseToken {
        let path = match self.current_path() {
            Some(parent) => format!("{parent}/{name}"),
            None => name.to_string(),
        };
        let entry = self.entry_index(path);
        self.open.push(entry);
        PhaseToken {
            entry,
            start: Instant::now(),
        }
    }

    /// Closes the scope opened by `token`, accumulating its wall time.
    ///
    /// # Panics
    /// Panics if `token` is not the innermost open scope (improper nesting).
    pub fn end(&mut self, token: PhaseToken) {
        let elapsed = token.start.elapsed();
        let popped = self.open.pop().expect("end() without an open phase");
        assert_eq!(
            popped, token.entry,
            "phase scopes must close innermost-first"
        );
        let e = &mut self.entries[token.entry];
        e.calls += 1;
        e.total += elapsed;
    }

    /// Times `f` as the phase `name` (nested phases may be opened inside
    /// through the `&mut Self` it receives).
    pub fn time<T>(&mut self, name: &str, f: impl FnOnce(&mut Self) -> T) -> T {
        let token = self.begin(name);
        let out = f(self);
        self.end(token);
        out
    }

    /// Aggregated entries in first-entered order.
    pub fn entries(&self) -> &[PhaseEntry] {
        &self.entries
    }

    /// Total time of a phase by exact path (`None` if never entered).
    pub fn total_of(&self, path: &str) -> Option<Duration> {
        self.entries
            .iter()
            .find(|e| e.path == path)
            .map(|e| e.total)
    }

    /// Sum of all *top-level* phase times (nested phases are included in
    /// their parents, so only depth-0 rows are added).
    pub fn total(&self) -> Duration {
        self.entries
            .iter()
            .filter(|e| !e.path.contains('/'))
            .map(|e| e.total)
            .fold(Duration::ZERO, |a, b| a + b)
    }

    /// Merges another profile into this one (path-wise accumulation) —
    /// used to aggregate per-run profiles across repetitions.
    pub fn merge(&mut self, other: &PhaseProfile) {
        for e in &other.entries {
            let i = self.entry_index(e.path.clone());
            self.entries[i].calls += e.calls;
            self.entries[i].total += e.total;
        }
    }

    /// Renders the aggregated table: indented paths, calls, total ms and
    /// the share of the top-level total.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "phase profile (total {:.1} ms)", ms(self.total()));
        let denom = self.total().as_secs_f64().max(f64::MIN_POSITIVE);
        let width = self
            .entries
            .iter()
            .map(|e| e.path.len() + 2 * e.path.matches('/').count())
            .max()
            .unwrap_or(5)
            .max(5);
        for e in &self.entries {
            let depth = e.path.matches('/').count();
            let name = e.path.rsplit('/').next().unwrap_or(&e.path);
            let label = format!("{}{}", "  ".repeat(depth), name);
            let _ = writeln!(
                out,
                "  {label:<width$}  {calls:>6} call{s}  {total:>9.2} ms  {pct:>5.1}%",
                calls = e.calls,
                s = if e.calls == 1 { " " } else { "s" },
                total = ms(e.total),
                pct = 100.0 * e.total.as_secs_f64() / denom,
            );
        }
        out
    }
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_repeated_phases() {
        let mut p = PhaseProfile::new();
        for _ in 0..3 {
            let t = p.begin("work");
            p.end(t);
        }
        assert_eq!(p.entries().len(), 1);
        assert_eq!(p.entries()[0].calls, 3);
        assert_eq!(p.entries()[0].path, "work");
    }

    #[test]
    fn nesting_builds_paths() {
        let mut p = PhaseProfile::new();
        p.time("build", |p| {
            p.time("weights", |_| std::thread::sleep(Duration::from_millis(2)));
            p.time("order", |_| {});
        });
        p.time("simulate", |_| {});
        let paths: Vec<&str> = p.entries().iter().map(|e| e.path.as_str()).collect();
        assert_eq!(paths, vec!["build", "build/weights", "build/order", "simulate"]);
        // The parent includes its children.
        assert!(p.total_of("build").unwrap() >= p.total_of("build/weights").unwrap());
        // Top-level total excludes nested rows (no double counting).
        assert!(p.total() >= p.total_of("build").unwrap());
        assert!(p.total() <= p.total_of("build").unwrap() + p.total_of("simulate").unwrap());
        let rendered = p.render();
        assert!(rendered.contains("weights"), "{rendered}");
        assert!(rendered.contains('%'), "{rendered}");
    }

    #[test]
    #[should_panic(expected = "innermost-first")]
    fn improper_nesting_panics() {
        let mut p = PhaseProfile::new();
        let outer = p.begin("a");
        let _inner = p.begin("b");
        p.end(outer); // closes "b"'s slot index mismatch → panic
    }

    #[test]
    fn merge_accumulates() {
        let mut a = PhaseProfile::new();
        a.time("x", |_| {});
        let mut b = PhaseProfile::new();
        b.time("x", |_| {});
        b.time("y", |_| {});
        a.merge(&b);
        assert_eq!(a.entries().len(), 2);
        assert_eq!(a.entries()[0].calls, 2);
        assert_eq!(a.total_of("y").map(|d| d.as_nanos() < u128::MAX), Some(true));
    }

    #[test]
    fn timed_closure_returns_value() {
        let mut p = PhaseProfile::new();
        let v = p.time("compute", |_| 41 + 1);
        assert_eq!(v, 42);
        assert_eq!(p.entries()[0].calls, 1);
    }
}
