//! # owp-telemetry — structured observability for the reproduction
//!
//! The paper's headline claims are *dynamic*: LID terminates without
//! communication cycles (Lemma 5), selects the same edge set as LIC
//! (Lemmas 3, 4, 6) and converges in a bounded number of PROP/REJ
//! exchanges. Final-outcome reports (`MatchingReport`, `NetStats`) cannot
//! observe any of that; this crate supplies the instruments the
//! execution layers thread through:
//!
//! * [`event`] / [`recorder`] — **structured event tracing**: one typed
//!   [`event::TelemetryEvent`] vocabulary covering LIC edge decisions,
//!   LID protocol actions and simnet transport, recorded through the
//!   zero-cost-when-disabled [`recorder::Recorder`] trait. The hot paths
//!   are instrumented generically ([`recorder::NullRecorder`]
//!   monomorphizes every call site away) or through the enum-dispatched
//!   [`recorder::EventLog`] (one branch per event, no `dyn`, no
//!   allocation while disabled). The bounded-memory
//!   [`recorder::FlightRecorder`] ring (always-on black box; overwrites
//!   oldest, counts drops, stamps epoch watermarks, never allocates after
//!   construction) and the [`recorder::Tee`] combinator feed the engine's
//!   post-mortem forensics.
//! * [`series`] — **per-round convergence time-series**: the
//!   [`series::ConvergenceSeries`] collector samples matched-edge count,
//!   total weight, total satisfaction, in-flight messages and the
//!   terminated-node fraction at every simulator round, with JSONL and
//!   CSV export for plotting and regression tracking.
//! * [`causal`] — **happens-before analysis**: every in-flight message
//!   carries a [`event::SpanId`] plus the span of the delivery that caused
//!   it; [`causal::CausalDag`] rebuilds the causal forest from a trace,
//!   certifies it acyclic (the empirical face of Lemma 5 — tampering
//!   yields structured [`causal::CausalViolation`]s, never panics),
//!   extracts latency-attributed critical paths and per-edge lifecycles.
//! * [`profile`] — **phase profiling**: lightweight monotonic scoped
//!   timers aggregated into a hierarchical [`profile::PhaseProfile`]
//!   table (weight computation / edge ordering / CSR build / selection
//!   loop / simulation), reported by the experiment runner and the large
//!   benches.
//!
//! Overhead policy: recording must never perturb what it measures. Every
//! instrument is off by default; a disabled recorder performs no
//! allocation and at most one predictable branch per event, and the LIC
//! selection loop is instrumented through monomorphized generics so the
//! disabled build is bit-identical machine code to the uninstrumented
//! one.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod causal;
pub mod event;
pub mod profile;
pub mod recorder;
pub mod series;

pub use causal::{
    CausalDag, CausalViolation, CausalViolationKind, CriticalHop, CriticalPath, EdgeLifecycle,
    EdgeOutcome, SpanInfo, SpanOutcome,
};
pub use event::{MessageKind, NodeEvent, SpanId, TelemetryEvent};
pub use profile::{PhaseProfile, PhaseToken};
pub use recorder::{EventLog, FlightRecorder, NullRecorder, Recorder, Tee};
pub use series::{ConvergenceSample, ConvergenceSeries};
