//! Per-round convergence time-series.
//!
//! Related P2P matching work (Lebedev et al.; Gai et al.) analyzes
//! convergence *trajectories* — rounds-to-stability and message complexity
//! over time — not just endpoints. [`ConvergenceSeries`] is the collector
//! the LID runners fill: one [`ConvergenceSample`] per simulator round,
//! exported as JSONL (one object per line, schema below) or CSV.
//!
//! JSONL schema (stable, consumed by `experiments --trace-out`):
//!
//! ```text
//! {"round":3,"matched_edges":41,"total_weight":12.75,"satisfaction_total":18.2,
//!  "messages_sent":240,"in_flight":17,"terminated_fraction":0.55}
//! ```
//!
//! Floats are printed with Rust's shortest round-trip formatting, so the
//! final row is bit-for-bit comparable with `MatchingReport` values.

use std::fmt::Write as _;
use std::path::Path;

/// One sampled round of a convergence run.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize)]
pub struct ConvergenceSample {
    /// Round number (0 = after `on_start`, before any delivery).
    pub round: u64,
    /// Edges locked by both endpoints so far.
    pub matched_edges: usize,
    /// Total eq. 9 weight of the current matching.
    pub total_weight: f64,
    /// Total true satisfaction `Σ S_i` of the current matching.
    pub satisfaction_total: f64,
    /// Cumulative messages handed to the network.
    pub messages_sent: u64,
    /// Messages pending delivery when the sample was taken.
    pub in_flight: usize,
    /// Fraction of nodes that have locally terminated.
    pub terminated_fraction: f64,
}

impl ConvergenceSample {
    /// One JSONL line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(128);
        let _ = write!(
            s,
            "{{\"round\":{},\"matched_edges\":{},\"total_weight\":{},\"satisfaction_total\":{},\"messages_sent\":{},\"in_flight\":{},\"terminated_fraction\":{}}}",
            self.round,
            self.matched_edges,
            json_f64(self.total_weight),
            json_f64(self.satisfaction_total),
            self.messages_sent,
            self.in_flight,
            json_f64(self.terminated_fraction),
        );
        s
    }

    /// One CSV row matching [`ConvergenceSeries::CSV_HEADER`].
    pub fn to_csv(&self) -> String {
        format!(
            "{},{},{},{},{},{},{}",
            self.round,
            self.matched_edges,
            json_f64(self.total_weight),
            json_f64(self.satisfaction_total),
            self.messages_sent,
            self.in_flight,
            json_f64(self.terminated_fraction),
        )
    }
}

/// `f64` in shortest round-trip form, forced valid for JSON (JSON has no
/// `NaN`/`inf`; those become `null` — they never occur in practice).
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        let s = format!("{x}");
        // Bare integers round-trip fine but keep the schema typed as float.
        if s.contains('.') || s.contains('e') || s.contains('E') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

/// The per-round trajectory of one convergence run.
#[derive(Clone, Debug, Default)]
pub struct ConvergenceSeries {
    samples: Vec<ConvergenceSample>,
}

impl ConvergenceSeries {
    /// CSV header matching [`ConvergenceSample::to_csv`].
    pub const CSV_HEADER: &'static str =
        "round,matched_edges,total_weight,satisfaction_total,messages_sent,in_flight,terminated_fraction";

    /// Empty series.
    pub fn new() -> Self {
        ConvergenceSeries::default()
    }

    /// Appends one round's sample. Rounds must be non-decreasing.
    pub fn push(&mut self, sample: ConvergenceSample) {
        if let Some(last) = self.samples.last() {
            debug_assert!(sample.round >= last.round, "rounds must be monotone");
        }
        self.samples.push(sample);
    }

    /// All samples, in round order.
    pub fn samples(&self) -> &[ConvergenceSample] {
        &self.samples
    }

    /// The final sample (the run's endpoint), if any round was recorded.
    pub fn last(&self) -> Option<&ConvergenceSample> {
        self.samples.last()
    }

    /// Number of sampled rounds.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` iff no round was sampled.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// JSONL document: one sample object per line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.samples.len() * 128);
        for s in &self.samples {
            out.push_str(&s.to_json());
            out.push('\n');
        }
        out
    }

    /// CSV document with header row.
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity((self.samples.len() + 1) * 64);
        out.push_str(Self::CSV_HEADER);
        out.push('\n');
        for s in &self.samples {
            out.push_str(&s.to_csv());
            out.push('\n');
        }
        out
    }

    /// Writes the JSONL document to `path`.
    pub fn write_jsonl<P: AsRef<Path>>(&self, path: P) -> std::io::Result<()> {
        std::fs::write(path, self.to_jsonl())
    }

    /// Writes the CSV document to `path`.
    pub fn write_csv<P: AsRef<Path>>(&self, path: P) -> std::io::Result<()> {
        std::fs::write(path, self.to_csv())
    }

    /// Parses a JSONL document produced by [`ConvergenceSeries::to_jsonl`]
    /// (blank lines skipped). Fields must appear in the schema order the
    /// exporter writes — this is a reader for our own stable schema, not a
    /// general JSON parser.
    pub fn parse_jsonl(doc: &str) -> Result<ConvergenceSeries, String> {
        let mut series = ConvergenceSeries::new();
        for (lineno, line) in doc.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let ctx = |what: &str| format!("line {}: {what}", lineno + 1);
            let body = line
                .strip_prefix('{')
                .and_then(|l| l.strip_suffix('}'))
                .ok_or_else(|| ctx("not a JSON object"))?;
            let mut fields = body.split(',');
            let mut next = |key: &str| -> Result<&str, String> {
                let f = fields.next().ok_or_else(|| ctx(&format!("missing field {key}")))?;
                let (k, v) = f.split_once(':').ok_or_else(|| ctx("field without ':'"))?;
                if k.trim() != format!("\"{key}\"") {
                    return Err(ctx(&format!("expected field {key:?}, found {k}")));
                }
                Ok(v.trim())
            };
            let f64_field = |v: &str| -> Result<f64, String> {
                if v == "null" {
                    Ok(f64::NAN)
                } else {
                    v.parse().map_err(|e| format!("{e}: {v}"))
                }
            };
            series.push(ConvergenceSample {
                round: next("round")?.parse().map_err(|e| ctx(&format!("round: {e}")))?,
                matched_edges: next("matched_edges")?
                    .parse()
                    .map_err(|e| ctx(&format!("matched_edges: {e}")))?,
                total_weight: f64_field(next("total_weight")?).map_err(|e| ctx(&e))?,
                satisfaction_total: f64_field(next("satisfaction_total")?).map_err(|e| ctx(&e))?,
                messages_sent: next("messages_sent")?
                    .parse()
                    .map_err(|e| ctx(&format!("messages_sent: {e}")))?,
                in_flight: next("in_flight")?
                    .parse()
                    .map_err(|e| ctx(&format!("in_flight: {e}")))?,
                terminated_fraction: f64_field(next("terminated_fraction")?)
                    .map_err(|e| ctx(&e))?,
            });
        }
        Ok(series)
    }

    /// Parses a CSV document produced by [`ConvergenceSeries::to_csv`].
    /// The header row must match [`ConvergenceSeries::CSV_HEADER`] exactly —
    /// schema drift is an error, not a silent remap.
    pub fn parse_csv(doc: &str) -> Result<ConvergenceSeries, String> {
        let mut lines = doc.lines();
        let header = lines.next().ok_or("empty document")?;
        if header != Self::CSV_HEADER {
            return Err(format!(
                "header mismatch: expected {:?}, found {header:?}",
                Self::CSV_HEADER
            ));
        }
        let mut series = ConvergenceSeries::new();
        for (lineno, line) in lines.enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let cols: Vec<&str> = line.split(',').collect();
            if cols.len() != 7 {
                return Err(format!("row {}: expected 7 columns, found {}", lineno + 2, cols.len()));
            }
            let ctx = |what: String| format!("row {}: {what}", lineno + 2);
            let f64_col = |v: &str| -> Result<f64, String> {
                if v == "null" {
                    Ok(f64::NAN)
                } else {
                    v.parse().map_err(|e| format!("{e}: {v}"))
                }
            };
            series.push(ConvergenceSample {
                round: cols[0].parse().map_err(|e| ctx(format!("round: {e}")))?,
                matched_edges: cols[1].parse().map_err(|e| ctx(format!("matched_edges: {e}")))?,
                total_weight: f64_col(cols[2]).map_err(ctx)?,
                satisfaction_total: f64_col(cols[3]).map_err(ctx)?,
                messages_sent: cols[4].parse().map_err(|e| ctx(format!("messages_sent: {e}")))?,
                in_flight: cols[5].parse().map_err(|e| ctx(format!("in_flight: {e}")))?,
                terminated_fraction: f64_col(cols[6]).map_err(ctx)?,
            });
        }
        Ok(series)
    }

    /// First round at which the matched-edge count reached its final value
    /// — the "edges stable from" convergence point (`None` for an empty
    /// series).
    pub fn stabilization_round(&self) -> Option<u64> {
        let last = self.samples.last()?;
        let final_edges = last.matched_edges;
        let mut stable_from = last.round;
        for s in self.samples.iter().rev() {
            if s.matched_edges == final_edges {
                stable_from = s.round;
            } else {
                break;
            }
        }
        Some(stable_from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(round: u64, edges: usize, w: f64) -> ConvergenceSample {
        ConvergenceSample {
            round,
            matched_edges: edges,
            total_weight: w,
            satisfaction_total: w / 2.0,
            messages_sent: round * 10,
            in_flight: (20 - round) as usize,
            terminated_fraction: round as f64 / 20.0,
        }
    }

    #[test]
    fn jsonl_and_csv_shape() {
        let mut series = ConvergenceSeries::new();
        series.push(s(0, 0, 0.0));
        series.push(s(1, 3, 1.5));
        assert_eq!(series.len(), 2);
        let jsonl = series.to_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl.starts_with("{\"round\":0,\"matched_edges\":0,\"total_weight\":0.0"));
        for line in jsonl.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
        let csv = series.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some(ConvergenceSeries::CSV_HEADER));
        assert_eq!(lines.next(), Some("0,0,0.0,0.0,0,20,0.0"));
        // Column count matches the header everywhere.
        for line in csv.lines() {
            assert_eq!(line.split(',').count(), 7);
        }
    }

    #[test]
    fn float_formatting_round_trips() {
        let x = 0.1 + 0.2; // classic non-representable sum
        let printed = json_f64(x);
        let back: f64 = printed.parse().unwrap();
        assert_eq!(back.to_bits(), x.to_bits(), "shortest form must round-trip");
        assert_eq!(json_f64(2.0), "2.0");
        assert_eq!(json_f64(f64::NAN), "null");
    }

    #[test]
    fn stabilization_round_finds_the_plateau() {
        let mut series = ConvergenceSeries::new();
        for (r, e) in [(0, 0), (1, 2), (2, 5), (3, 5), (4, 5)] {
            series.push(s(r, e, e as f64));
        }
        assert_eq!(series.stabilization_round(), Some(2));
        assert_eq!(series.last().unwrap().matched_edges, 5);
        assert_eq!(ConvergenceSeries::new().stabilization_round(), None);
    }

    #[test]
    fn csv_header_is_pinned() {
        // Downstream tooling (owp-inspect, plotting scripts) keys on these
        // exact column names; changing them is a breaking schema change.
        assert_eq!(
            ConvergenceSeries::CSV_HEADER,
            "round,matched_edges,total_weight,satisfaction_total,messages_sent,in_flight,terminated_fraction"
        );
    }

    #[test]
    fn jsonl_export_parses_back_bit_for_bit() {
        let mut series = ConvergenceSeries::new();
        for (r, e) in [(0u64, 0usize), (1, 3), (2, 5), (5, 5)] {
            series.push(s(r, e, 0.1 + 0.2 + e as f64));
        }
        let back = ConvergenceSeries::parse_jsonl(&series.to_jsonl()).expect("parses");
        assert_eq!(back.len(), series.len());
        for (a, b) in back.samples().iter().zip(series.samples()) {
            assert_eq!(a.round, b.round);
            assert_eq!(a.matched_edges, b.matched_edges);
            assert_eq!(a.total_weight.to_bits(), b.total_weight.to_bits());
            assert_eq!(a.satisfaction_total.to_bits(), b.satisfaction_total.to_bits());
            assert_eq!(a.messages_sent, b.messages_sent);
            assert_eq!(a.in_flight, b.in_flight);
            assert_eq!(a.terminated_fraction.to_bits(), b.terminated_fraction.to_bits());
        }
        // And re-export is byte-identical.
        assert_eq!(back.to_jsonl(), series.to_jsonl());
    }

    #[test]
    fn csv_export_parses_back_bit_for_bit() {
        let mut series = ConvergenceSeries::new();
        for (r, e) in [(0u64, 0usize), (1, 2), (3, 7)] {
            series.push(s(r, e, e as f64 * 1.25));
        }
        let back = ConvergenceSeries::parse_csv(&series.to_csv()).expect("parses");
        assert_eq!(back.to_csv(), series.to_csv());
        assert_eq!(back.stabilization_round(), series.stabilization_round());
    }

    #[test]
    fn parsers_reject_schema_drift() {
        // CSV: a renamed column is an error, not a silent remap.
        let bad = "round,edges,total_weight,satisfaction_total,messages_sent,in_flight,terminated_fraction\n0,0,0.0,0.0,0,0,0.0\n";
        assert!(ConvergenceSeries::parse_csv(bad).is_err());
        assert!(ConvergenceSeries::parse_csv("").is_err());
        // JSONL: reordered/missing fields are errors.
        assert!(ConvergenceSeries::parse_jsonl("{\"matched_edges\":0,\"round\":0}").is_err());
        assert!(ConvergenceSeries::parse_jsonl("not json\n").is_err());
        // Empty JSONL is a valid empty series.
        assert!(ConvergenceSeries::parse_jsonl("").unwrap().is_empty());
    }

    #[test]
    fn file_export_round_trips() {
        let mut series = ConvergenceSeries::new();
        series.push(s(0, 1, 0.5));
        let dir = std::env::temp_dir().join("owp_telemetry_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("series.jsonl");
        series.write_jsonl(&path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), series.to_jsonl());
        let _ = std::fs::remove_file(&path);
    }
}
