//! The `owp-inspect` exit-code contract, pinned per subcommand:
//!
//! * `0` — artifact is clean;
//! * `1` — artifact records or reproduces a failure;
//! * `2` — usage error / unreadable input / non-re-executable bundle.
//!
//! Each test drives the real binary (`CARGO_BIN_EXE_owp-inspect`) against
//! a fixture written to a per-test temp directory, so the contract is
//! verified end to end — argument parsing, file IO, parsers, and the
//! final `exit` all included.

use owp_engine::{Engine, EngineEvent, InjectedFault};
use owp_graph::NodeId;
use owp_matching::Problem;
use owp_metrics::MetricsRegistry;
use std::path::PathBuf;
use std::process::Command;

/// Per-test scratch directory under the target dir; recreated fresh.
fn scratch(test: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(test);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Runs `owp-inspect <args>` and returns (exit code, stdout, stderr).
fn inspect(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_owp-inspect"))
        .args(args)
        .output()
        .expect("spawn owp-inspect");
    (
        out.status.code().expect("no exit code (signal?)"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn write(dir: &std::path::Path, name: &str, contents: &str) -> String {
    let path = dir.join(name);
    std::fs::write(&path, contents).expect("write fixture");
    path.to_string_lossy().into_owned()
}

// ---------------------------------------------------------------- usage

#[test]
fn no_arguments_is_a_usage_error() {
    let (code, _, err) = inspect(&[]);
    assert_eq!(code, 2);
    assert!(err.contains("usage:"), "usage text on stderr: {err}");
    assert!(err.contains("exit codes:"), "contract documented in usage: {err}");
}

#[test]
fn unknown_subcommand_is_a_usage_error() {
    let (code, _, _) = inspect(&["frobnicate", "x.json"]);
    assert_eq!(code, 2);
}

// ---------------------------------------------------------------- trace

#[test]
fn trace_clean_series_exits_zero() {
    let dir = scratch("trace_clean");
    let series = "\
{\"round\":0,\"matched_edges\":0,\"total_weight\":0.0,\"satisfaction_total\":0.0,\"messages_sent\":0,\"in_flight\":0,\"terminated_fraction\":0.0}
{\"round\":4,\"matched_edges\":3,\"total_weight\":2.5,\"satisfaction_total\":1.5,\"messages_sent\":40,\"in_flight\":2,\"terminated_fraction\":0.5}
{\"round\":9,\"matched_edges\":3,\"total_weight\":2.5,\"satisfaction_total\":1.5,\"messages_sent\":55,\"in_flight\":0,\"terminated_fraction\":1.0}
";
    let path = write(&dir, "series.jsonl", series);
    let (code, out, _) = inspect(&["trace", &path]);
    assert_eq!(code, 0, "clean series: {out}");
    assert!(out.contains("matching growth"), "phase split printed: {out}");
}

#[test]
fn trace_unparseable_input_exits_two() {
    let dir = scratch("trace_bad");
    let path = write(&dir, "series.jsonl", "this is not a series\n");
    let (code, _, err) = inspect(&["trace", &path]);
    assert_eq!(code, 2, "parse failure is a usage error: {err}");
}

#[test]
fn trace_missing_file_exits_two() {
    let (code, _, _) = inspect(&["trace", "/nonexistent/owp/series.jsonl"]);
    assert_eq!(code, 2);
}

// -------------------------------------------------------------- metrics

#[test]
fn metrics_clean_audit_exits_zero() {
    let dir = scratch("metrics_clean");
    let reg = MetricsRegistry::new();
    reg.counter("audit_checks_total").add(12);
    reg.counter("audit_violations_total"); // registered, still 0
    let path = write(&dir, "snap.json", &reg.snapshot().to_json());
    let (code, out, _) = inspect(&["metrics", &path]);
    assert_eq!(code, 0, "zero violations: {out}");
    assert!(out.contains("clean — 0 violations"), "{out}");
}

#[test]
fn metrics_recorded_violations_exit_one() {
    let dir = scratch("metrics_dirty");
    let reg = MetricsRegistry::new();
    reg.counter("audit_violations_total").add(2);
    let path = write(&dir, "snap.json", &reg.snapshot().to_json());
    let (code, out, _) = inspect(&["metrics", &path]);
    assert_eq!(code, 1, "recorded violations must exit 1: {out}");
    assert!(out.contains("FAILED"), "{out}");
}

#[test]
fn metrics_unparseable_input_exits_two() {
    let dir = scratch("metrics_bad");
    let path = write(&dir, "snap.json", "{not json");
    let (code, _, _) = inspect(&["metrics", &path]);
    assert_eq!(code, 2);
}

// --------------------------------------------------------------- causal

#[test]
fn causal_consistent_trace_exits_zero() {
    let dir = scratch("causal_clean");
    let trace = "\
{\"ev\":\"span_sent\",\"time\":0,\"span\":0,\"parent\":null,\"from\":3,\"to\":7,\"kind\":\"PROP\"}
{\"ev\":\"span_delivered\",\"time\":1,\"span\":0}
{\"ev\":\"span_sent\",\"time\":2,\"span\":1,\"parent\":0,\"from\":7,\"to\":3,\"kind\":\"ACC\"}
{\"ev\":\"span_delivered\",\"time\":3,\"span\":1}
";
    let path = write(&dir, "events.jsonl", trace);
    let (code, out, _) = inspect(&["causal", &path]);
    assert_eq!(code, 0, "consistent DAG: {out}");
    assert!(out.contains("Lemma 5 holds"), "{out}");
}

#[test]
fn causal_violated_certificate_exits_one() {
    let dir = scratch("causal_dirty");
    // Span 1 claims parent 99, which has no span_sent record — a
    // broken happens-before edge the certificate must reject.
    let trace = "\
{\"ev\":\"span_sent\",\"time\":0,\"span\":0,\"parent\":null,\"from\":3,\"to\":7,\"kind\":\"PROP\"}
{\"ev\":\"span_delivered\",\"time\":1,\"span\":0}
{\"ev\":\"span_sent\",\"time\":2,\"span\":1,\"parent\":99,\"from\":7,\"to\":3,\"kind\":\"ACC\"}
";
    let path = write(&dir, "events.jsonl", trace);
    let (code, out, _) = inspect(&["causal", &path]);
    assert_eq!(code, 1, "broken certificate must exit 1: {out}");
    assert!(out.contains("FAILED"), "{out}");
}

#[test]
fn causal_unknown_flag_exits_two() {
    let (code, _, err) = inspect(&["causal", "x.jsonl", "--frob"]);
    assert_eq!(code, 2);
    assert!(err.contains("unknown flag"), "{err}");
}

// ------------------------------------------------------------ forensics

/// A warmed engine with recording on, plus a structural batch cycle.
fn recording_engine() -> (Engine, Vec<Vec<EngineEvent>>) {
    let mut e = Engine::builder(Problem::random_gnp(24, 0.3, 2, 97))
        .flight_capacity(256)
        .history_capacity(16)
        .build();
    let n = e.dynamic().graph().node_count() as u32;
    let mut batches = Vec::new();
    for i in 0..6u32 {
        let node = NodeId((i * 3) % n);
        batches.push(vec![EngineEvent::NodeLeave { node }]);
        batches.push(vec![EngineEvent::NodeJoin { node }]);
    }
    for b in &batches {
        e.apply_batch(b).unwrap();
    }
    (e, batches)
}

#[test]
fn forensics_live_reproducer_exits_one() {
    let dir = scratch("forensics_live");
    let (mut e, _) = recording_engine();
    let edge = {
        let dp = e.dynamic();
        dp.graph()
            .edges()
            .find(|&ed| dp.is_alive(ed) && !e.matching().contains(ed))
            .expect("an unselected alive edge exists")
    };
    e.inject_fault(InjectedFault::PhantomEdge { edge });
    let bundle = e
        .certify_with_forensics(Some(97), None)
        .expect_err("phantom edge must fail certification");
    let path = write(&dir, "bundle.json", &bundle.to_json());
    let (code, out, _) = inspect(&["forensics", &path]);
    assert_eq!(code, 1, "live reproducer must exit 1: {out}");
    assert!(out.contains("STILL FAILS"), "{out}");
    assert!(out.contains("same as recorded violation"), "{out}");
    assert!(out.contains("shrunk reproducer"), "{out}");
}

#[test]
fn forensics_clean_replay_exits_zero() {
    let dir = scratch("forensics_clean");
    // A manual capture of a *healthy* engine: the recorded window
    // replays without divergence, so the bundle is informational only.
    let (e, _) = recording_engine();
    e.certify().expect("healthy engine certifies");
    let bundle = e.capture_bundle("manual", "operator snapshot", Some(97), None);
    let path = write(&dir, "bundle.json", &bundle.to_json());
    let (code, out, _) = inspect(&["forensics", &path]);
    assert_eq!(code, 0, "clean replay: {out}");
    assert!(out.contains("replays CLEAN"), "{out}");
}

#[test]
fn forensics_unparseable_bundle_exits_two() {
    let dir = scratch("forensics_bad");
    let path = write(&dir, "bundle.json", "{\"format\":99}");
    let (code, _, err) = inspect(&["forensics", &path]);
    assert_eq!(code, 2, "unparseable bundle is a usage error: {err}");
}

#[test]
fn forensics_unreplayable_bundle_exits_two() {
    let dir = scratch("forensics_norun");
    // Recording explicitly disabled (capacity 0): the bundle has no
    // checkpoint, so the reproducer cannot be re-executed — a
    // non-re-executable artifact.
    let mut e = Engine::builder(Problem::random_gnp(24, 0.3, 2, 97))
        .flight_capacity(0)
        .history_capacity(0)
        .build();
    e.apply(EngineEvent::NodeLeave { node: NodeId(2) }).unwrap();
    let edge = {
        let dp = e.dynamic();
        dp.graph()
            .edges()
            .find(|&ed| dp.is_alive(ed) && !e.matching().contains(ed))
            .expect("an unselected alive edge exists")
    };
    e.inject_fault(InjectedFault::PhantomEdge { edge });
    let bundle = e
        .certify_with_forensics(None, None)
        .expect_err("phantom edge must fail certification");
    let path = write(&dir, "bundle.json", &bundle.to_json());
    let (code, _, err) = inspect(&["forensics", &path]);
    assert_eq!(code, 2, "non-re-executable bundle exits 2: {err}");
    assert!(err.contains("cannot be re-executed"), "{err}");
}

// ------------------------------------------------------------------ wal

/// Builds a real WAL + snapshot pair by driving a matchd data dir the
/// same way the daemon does: apply batches, append, snapshot, append
/// more. Returns (wal path, snapshot path, spec, final epoch).
fn matchd_fixture(dir: &std::path::Path) -> (String, String, &'static str, u64) {
    use owp_matchd::{FsyncPolicy, SnapshotStore, Wal};
    const SPEC: &str = "ring:40,2,9";
    let problem = owp_matchd::from_spec(SPEC).expect("spec");
    let mut engine = Engine::new(problem.clone());
    let wal_path = dir.join("matchd.wal");
    let (mut wal, _, _) = Wal::open(&wal_path, FsyncPolicy::Never).expect("open");
    let stream = owp_matchd::client_stream(&problem, 0, 1, 60);
    let mut chunks = stream.chunks(6);
    // Three batches, then a snapshot, then the rest — so replay must
    // skip the records the snapshot already covers.
    for _ in 0..3 {
        let chunk = chunks.next().expect("enough events");
        engine.apply_batch(chunk).expect("valid");
        wal.append(engine.epoch().0, chunk).expect("append");
    }
    let store = SnapshotStore::new(dir);
    store
        .save(engine.epoch().0, &owp_engine::OriginSnapshot::capture(engine.dynamic()))
        .expect("snapshot");
    for chunk in chunks {
        engine.apply_batch(chunk).expect("valid");
        wal.append(engine.epoch().0, chunk).expect("append");
    }
    (
        wal_path.to_string_lossy().into_owned(),
        store.path().to_string_lossy().into_owned(),
        SPEC,
        engine.epoch().0,
    )
}

#[test]
fn wal_clean_log_exits_zero() {
    let dir = scratch("wal_clean");
    let (wal, _, _, epoch) = matchd_fixture(&dir);
    let (code, out, _) = inspect(&["wal", &wal]);
    assert_eq!(code, 0, "clean log: {out}");
    assert!(out.contains(&format!("epochs 1..={epoch}")), "{out}");
    assert!(out.contains("integrity: clean"), "{out}");
    assert!(out.contains("integrity scan only"), "no replay without a start state: {out}");
}

#[test]
fn wal_replay_certifies_against_snapshot_and_universe() {
    let dir = scratch("wal_replay");
    let (wal, snap, spec, epoch) = matchd_fixture(&dir);
    // Snapshot start: records at or below the snapshot epoch are skipped.
    let (code, out, _) = inspect(&["wal", &wal, "--snapshot", &snap]);
    assert_eq!(code, 0, "snapshot replay: {out}");
    assert!(out.contains("3 at or below the snapshot epoch skipped"), "{out}");
    assert!(out.contains(&format!("engine at epoch {epoch}")), "{out}");
    assert!(out.contains("certify: recovered matching bit-identical"), "{out}");
    // Universe start: the whole log replays from epoch 0.
    let (code, out, _) = inspect(&["wal", &wal, "--universe", spec]);
    assert_eq!(code, 0, "universe replay: {out}");
    assert!(out.contains("0 at or below the snapshot epoch skipped"), "{out}");
    assert!(out.contains("certify: recovered matching bit-identical"), "{out}");
}

#[test]
fn wal_torn_tail_exits_one() {
    let dir = scratch("wal_torn");
    let (wal, snap, _, _) = matchd_fixture(&dir);
    let mut bytes = std::fs::read(&wal).expect("read");
    bytes.extend_from_slice(&[0xba, 0xad, 0xf0, 0x0d]);
    std::fs::write(&wal, &bytes).expect("write");
    let (code, out, _) = inspect(&["wal", &wal]);
    assert_eq!(code, 1, "torn tail is a recorded failure: {out}");
    assert!(out.contains("TORN TAIL — 4 trailing byte(s)"), "{out}");
    // The valid prefix still replays and certifies — but the torn bytes
    // keep the overall verdict at 1.
    let (code, out, _) = inspect(&["wal", &wal, "--snapshot", &snap]);
    assert_eq!(code, 1, "{out}");
    assert!(out.contains("certify: recovered matching bit-identical"), "{out}");
}

#[test]
fn wal_missing_file_exits_two() {
    let dir = scratch("wal_missing");
    let path = dir.join("nope.wal");
    let (code, _, err) = inspect(&["wal", &path.to_string_lossy()]);
    assert_eq!(code, 2);
    assert!(err.contains("cannot read"), "{err}");
}

// ------------------------------------------------------------------ ops

/// `ops` against a live daemon: the one networked subcommand. A fresh
/// matchd with its admin plane on an ephemeral port, some ingested load,
/// then the real binary scrapes `/status` + `/readyz` — ready and clean
/// must exit 0 with the health lines rendered.
#[test]
fn ops_live_daemon_round_trip_exits_zero() {
    use owp_matchd::{FsyncPolicy, Matchd, MatchdClient, MatchdConfig, SubmitOutcome};

    let dir = scratch("ops_live");
    let spec = "ba:200,3,2,7";
    let universe = owp_matchd::from_spec(spec).expect("spec");
    let mut config = MatchdConfig::new(&dir);
    config.max_linger = std::time::Duration::from_micros(200);
    config.fsync = FsyncPolicy::Never;
    config.ops_addr = Some("127.0.0.1:0".into());
    config.audit_every = std::time::Duration::from_millis(25);
    let daemon =
        Matchd::start("127.0.0.1:0", &universe, config, MetricsRegistry::new()).expect("start");
    let ops = daemon.ops_addr().expect("ops plane configured").to_string();

    let mut client = MatchdClient::connect(daemon.local_addr()).expect("connect");
    let stream = owp_matchd::client_stream(&universe, 0, 1, 160);
    for chunk in stream.chunks(16) {
        match client.submit_with_retry(chunk, 50).expect("submit") {
            SubmitOutcome::Accepted { .. } => {}
            SubmitOutcome::Busy { .. } => panic!("retries exhausted"),
            SubmitOutcome::Rejected { error } => panic!("rejected: {error}"),
        }
    }
    let epoch = client.epoch().expect("epoch").epoch;

    let (code, out, err) = inspect(&["ops", &ops]);
    assert_eq!(code, 0, "ready + clean daemon must exit 0\nstdout: {out}\nstderr: {err}");
    assert!(out.contains("matchd up"), "{out}");
    assert!(out.contains("readiness: 200 ready"), "{out}");
    assert!(out.contains("auditor: clean"), "{out}");
    assert!(out.contains(&format!("epoch {epoch}")), "{out}");

    let stats = daemon.shutdown();
    assert!(stats.graceful);
}

/// An unreachable admin endpoint is indistinguishable from a bad path:
/// usage-error territory, exit 2.
#[test]
fn ops_unreachable_endpoint_exits_two() {
    // Bind-and-drop: the kernel hands out a port that is then guaranteed
    // closed when the binary tries it.
    let port = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        l.local_addr().expect("addr").port()
    };
    let (code, _, err) = inspect(&["ops", &format!("127.0.0.1:{port}")]);
    assert_eq!(code, 2);
    assert!(err.contains("cannot connect"), "{err}");
}

// ------------------------------------------------------------- campaign

/// A small but fully featured campaign: every fault class covered, the
/// PhantomEdge canary injected at plan 7.
fn campaign_fixture() -> owp_bench::campaign::CampaignReport {
    owp_bench::campaign::run_campaign(&owp_bench::campaign::CampaignConfig {
        seed: 0xC11,
        plans: 15,
        n: 14,
        instances: 3,
        quota: 2,
        inject_at: Some(7),
    })
}

#[test]
fn campaign_clean_report_exits_zero() {
    let dir = scratch("campaign_clean");
    let report = campaign_fixture();
    assert!(report.clean(), "fixture must be canary-only: {:?}", report.violations);
    let path = write(&dir, "report.json", &report.to_json());
    let (code, out, _) = inspect(&["campaign", &path]);
    assert_eq!(code, 0, "canary-only report is clean: {out}");
    assert!(out.contains("digest") && out.contains("verifies"), "{out}");
    assert!(out.contains("every fault class executed and certified"), "{out}");
    assert!(out.contains("injected"), "the canary is listed: {out}");
    assert!(out.contains("verdict: clean"), "{out}");
}

#[test]
fn campaign_genuine_violation_exits_one() {
    let dir = scratch("campaign_genuine");
    let mut report = campaign_fixture();
    // Reclassify the canary as a genuine violation and re-attest, so the
    // digest verifies but the verdict must flip to VIOLATED.
    let canary = report.violations.iter_mut().find(|v| v.injected).expect("canary");
    canary.injected = false;
    report.digest = String::new();
    report.digest = owp_bench::campaign::fnv1a64_hex(report.to_json().as_bytes());
    let path = write(&dir, "report.json", &report.to_json());
    let (code, out, _) = inspect(&["campaign", &path]);
    assert_eq!(code, 1, "genuine violations must exit 1: {out}");
    assert!(out.contains("GENUINE"), "{out}");
    assert!(out.contains("verdict: VIOLATED"), "{out}");
}

#[test]
fn campaign_tampered_digest_exits_one() {
    let dir = scratch("campaign_tampered");
    let report = campaign_fixture();
    let json = report.to_json().replace(&report.digest, "0000000000000000");
    let path = write(&dir, "report.json", &json);
    let (code, out, _) = inspect(&["campaign", &path]);
    assert_eq!(code, 1, "a digest that does not attest must exit 1: {out}");
    assert!(out.contains("attestation: FAILED"), "{out}");
}

#[test]
fn campaign_coverage_gap_exits_one() {
    let dir = scratch("campaign_gap");
    // 3 plans round-robin over 5 classes: reordering and crash_restart
    // never execute, which is a coverage failure even with zero violations.
    let report = owp_bench::campaign::run_campaign(&owp_bench::campaign::CampaignConfig {
        seed: 0xC11,
        plans: 3,
        n: 14,
        instances: 1,
        quota: 2,
        inject_at: None,
    });
    let path = write(&dir, "report.json", &report.to_json());
    let (code, out, _) = inspect(&["campaign", &path]);
    assert_eq!(code, 1, "uncovered fault classes must exit 1: {out}");
    assert!(out.contains("COVERAGE GAP"), "{out}");
    assert!(out.contains("crash_restart"), "{out}");
}

#[test]
fn campaign_replay_reproduces_exits_zero() {
    let dir = scratch("campaign_replay");
    let report = campaign_fixture();
    let path = write(&dir, "report.json", &report.to_json());
    let (code, out, _) = inspect(&["campaign", &path, "--replay", "7"]);
    assert_eq!(code, 0, "the canary must replay to its recorded outcome: {out}");
    assert!(out.contains("replay plan 7: reproduces the recorded outcome"), "{out}");
    // A certified plan replays clean too.
    let (code, out, _) = inspect(&["campaign", &path, "--replay", "0"]);
    assert_eq!(code, 0, "{out}");
}

#[test]
fn campaign_replay_out_of_range_exits_two() {
    let dir = scratch("campaign_replay_oob");
    let report = campaign_fixture();
    let path = write(&dir, "report.json", &report.to_json());
    let (code, _, err) = inspect(&["campaign", &path, "--replay", "99"]);
    assert_eq!(code, 2);
    assert!(err.contains("out of range"), "{err}");
}

#[test]
fn campaign_unparseable_input_exits_two() {
    let dir = scratch("campaign_bad");
    let path = write(&dir, "report.json", "{\"not\":\"a campaign report\"}");
    let (code, _, err) = inspect(&["campaign", &path]);
    assert_eq!(code, 2);
    assert!(err.contains("cannot parse"), "{err}");
    let (code, _, _) = inspect(&["campaign", &path, "--replay"]);
    assert_eq!(code, 2, "--replay without a plan id is a usage error");
    let (code, _, _) = inspect(&["campaign"]);
    assert_eq!(code, 2, "campaign without a path is a usage error");
}
