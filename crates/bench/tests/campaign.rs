//! The campaign attestation contract, end to end:
//!
//! * same seed ⇒ byte-identical reports across independent in-process
//!   runs, instrumented or not;
//! * the canonical bytes are *build-invariant*: the quick E25 report's
//!   digest is pinned to a constant, so running this suite with and
//!   without `--features parallel` (CI does both) proves the feature flag
//!   cannot perturb campaign results — plans execute sequentially by
//!   construction;
//! * reports survive the JSON round trip bit for bit.
//!
//! If the pinned digest changes legitimately (new fault generator, new
//! certificate, protocol change), update it together with
//! `BENCH_e25.json` — both attest the same determinism claim.

use owp_bench::campaign::{run_campaign, run_campaign_with_metrics};
use owp_bench::experiments::e25_campaign;
use owp_metrics::MetricsRegistry;

/// FNV-1a-64 attestation digest of the quick E25 campaign (seed 0xE25,
/// 60 plans, gnp(n=16, b=2) x 4 instances, canary at plan 30).
const QUICK_E25_DIGEST: &str = "42626cb2d39f7376";

#[test]
fn same_seed_runs_are_byte_identical() {
    let cfg = e25_campaign::config(true);
    let a = run_campaign(&cfg);
    let b = run_campaign(&cfg);
    assert_eq!(a.to_json(), b.to_json(), "two plain runs");

    // Metrics instrumentation must not perturb the attested bytes.
    let reg = MetricsRegistry::new();
    let c = run_campaign_with_metrics(&cfg, Some(&reg));
    assert_eq!(a.to_json(), c.to_json(), "instrumented run");
}

#[test]
fn quick_campaign_digest_is_pinned_across_builds() {
    let report = run_campaign(&e25_campaign::config(true));
    assert!(report.verify_digest().is_ok());
    assert_eq!(
        report.digest, QUICK_E25_DIGEST,
        "the quick E25 report drifted — if intentional, update this pin \
         and regenerate BENCH_e25.json together"
    );
}

#[test]
fn report_json_round_trip_is_bitwise() {
    let report = run_campaign(&e25_campaign::config(true));
    let json = report.to_json();
    let parsed = owp_bench::campaign::CampaignReport::parse(&json).expect("parses");
    assert_eq!(parsed, report);
    assert_eq!(parsed.to_json(), json);
}
