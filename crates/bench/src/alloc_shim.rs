//! Counting global allocator for every `owp-bench` binary.
//!
//! The engine's steady-state zero-allocation contract (DESIGN.md §11) is
//! measured through [`owp_metrics::ALLOC_COUNT`]; the metrics crate is
//! `#![forbid(unsafe_code)]`, so the `GlobalAlloc` shim that feeds the
//! counter lives here, in the one workspace crate that permits `unsafe`.
//! Linking this library installs the shim process-wide — the
//! `experiments` binary, `bench_guard`, `owp-inspect`, the criterion
//! benches and the crate's own tests all count, which is what lets E21
//! publish an honest `engine_allocations_per_batch` gauge.
//!
//! Cost: one relaxed atomic increment per `alloc`/`realloc` call on top
//! of the system allocator — far below the jitter envelope of any guarded
//! wall time, and the price of keeping the contract continuously
//! measurable instead of trusted.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::Ordering;

/// The system allocator plus one counter bump per allocation.
pub struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        owp_metrics::ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        owp_metrics::ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[cfg(test)]
mod tests {
    #[test]
    fn the_shim_counts() {
        let mark = owp_metrics::allocation_count();
        let v: Vec<u64> = Vec::with_capacity(128);
        drop(v);
        assert!(
            owp_metrics::allocations_since(mark) >= 1,
            "an explicit Vec allocation must be observed"
        );
    }
}
