//! Plain-text table rendering for experiment output.

use std::fmt::Write as _;

/// A printable experiment table (one per paper table/figure).
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Experiment title, printed above the table.
    pub title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new<S: Into<String>>(title: S, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a data row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Appends a footnote printed under the table.
    pub fn note<S: Into<String>>(&mut self, note: S) {
        self.notes.push(note.into());
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Cell accessor (row, column) for tests.
    pub fn cell(&self, r: usize, c: usize) -> &str {
        &self.rows[r][c]
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut width = vec![0usize; cols];
        for (c, h) in self.headers.iter().enumerate() {
            width[c] = h.chars().count();
        }
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                width[c] = width[c].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |out: &mut String, cells: &[String]| {
            let mut parts = Vec::with_capacity(cols);
            for (c, cell) in cells.iter().enumerate() {
                parts.push(format!("{cell:>w$}", w = width[c]));
            }
            let _ = writeln!(out, "| {} |", parts.join(" | "));
        };
        line(&mut out, &self.headers);
        let total: usize = width.iter().sum::<usize>() + 3 * cols + 1;
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            line(&mut out, row);
        }
        for note in &self.notes {
            let _ = writeln!(out, "  note: {note}");
        }
        out
    }

    /// Renders and prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Renders the table as a JSON object
    /// (`{"title", "headers", "rows", "notes"}`). Cells that are plain
    /// numbers are emitted as JSON numbers so downstream tooling can plot
    /// them without re-parsing; everything else becomes a string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"title\":");
        out.push_str(&json_string(&self.title));
        out.push_str(",\"headers\":[");
        push_joined(&mut out, &self.headers, |h| json_string(h));
        out.push_str("],\"rows\":[");
        for (r, row) in self.rows.iter().enumerate() {
            if r > 0 {
                out.push(',');
            }
            out.push('[');
            push_joined(&mut out, row, |c| json_cell(c));
            out.push(']');
        }
        out.push_str("],\"notes\":[");
        push_joined(&mut out, &self.notes, |n| json_string(n));
        out.push_str("]}");
        out
    }
}

fn push_joined<T, F: Fn(&T) -> String>(out: &mut String, items: &[T], f: F) {
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&f(item));
    }
}

/// JSON string literal with the escapes the JSON grammar requires.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A cell that is a finite decimal number round-trips as a JSON number;
/// anything else (units, ratios, text) is quoted.
fn json_cell(cell: &str) -> String {
    let numeric = !cell.is_empty()
        && cell
            .chars()
            .all(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
        && cell.parse::<f64>().map(f64::is_finite).unwrap_or(false);
    if numeric {
        cell.to_string()
    } else {
        json_string(cell)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["a", "metric"]);
        t.row(vec!["1".into(), "0.5".into()]);
        t.row(vec!["100".into(), "0.25".into()]);
        t.note("hello");
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("note: hello"));
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.cell(1, 1), "0.25");
        // Both data lines have equal length (alignment).
        let lines: Vec<&str> = s.lines().filter(|l| l.starts_with('|')).collect();
        assert_eq!(lines[0].len(), lines[1].len());
        assert_eq!(lines[1].len(), lines[2].len());
    }

    #[test]
    fn json_export_types_cells() {
        let mut t = Table::new("ex \"15\"", &["n", "LID ms", "kind"]);
        t.row(vec!["100000".into(), "43.5".into(), "async".into()]);
        t.note("line\nbreak");
        let j = t.to_json();
        assert_eq!(
            j,
            "{\"title\":\"ex \\\"15\\\"\",\"headers\":[\"n\",\"LID ms\",\"kind\"],\
             \"rows\":[[100000,43.5,\"async\"]],\"notes\":[\"line\\nbreak\"]}"
        );
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn rejects_bad_row() {
        let mut t = Table::new("x", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }
}
