//! E18 — convergence trace: the per-round trajectory of one synchronous LID
//! run, sampled by [`owp_core::run_lid_sync_series`]. Where E5 reports only
//! the endpoint (rounds to quiescence), this experiment shows the *shape* of
//! convergence: how fast edges lock, how the in-flight message population
//! drains, and when nodes start terminating.
//!
//! The final row is, by construction, bit-for-bit the values
//! [`owp_matching::MatchingReport`] computes for the finished matching —
//! the quick test asserts that with `f64::to_bits`.
//!
//! With `experiments e18 --trace-out <path>` the raw series is additionally
//! written as JSONL (schema in `owp_telemetry::series`).

use crate::Table;
use owp_core::run_lid_sync_series;
use owp_matching::Problem;
use owp_telemetry::ConvergenceSeries;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Instance used by the experiment: one mid-size G(n,p) overlay, fixed seed
/// so the trajectory is reproducible run to run.
fn instance(quick: bool) -> Problem {
    let n: usize = if quick { 128 } else { 2048 };
    let mut rng = StdRng::seed_from_u64(18);
    let g = owp_graph::generators::erdos_renyi(n, 12.0 / (n as f64 - 1.0), &mut rng);
    Problem::random_over(g, 4, 18)
}

/// Runs the traced convergence run and returns the table plus the raw
/// series (for `--trace-out`).
pub fn run_with_series(quick: bool) -> (Table, ConvergenceSeries) {
    let p = instance(quick);
    let (r, series) = run_lid_sync_series(&p);
    assert!(r.terminated, "sync LID must terminate");

    let mut t = Table::new(
        format!(
            "E18 — per-round convergence trace (G(n,p), n = {}, b = 4)",
            p.node_count()
        ),
        &[
            "round",
            "matched edges",
            "total weight",
            "Σ satisfaction",
            "msgs sent",
            "in flight",
            "terminated %",
        ],
    );
    for s in series.samples() {
        t.row(vec![
            s.round.to_string(),
            s.matched_edges.to_string(),
            format!("{:.4}", s.total_weight),
            format!("{:.4}", s.satisfaction_total),
            s.messages_sent.to_string(),
            s.in_flight.to_string(),
            format!("{:.1}", 100.0 * s.terminated_fraction),
        ]);
    }
    if let Some(stable) = series.stabilization_round() {
        t.note(format!(
            "matching stable from round {stable} of {}; the tail is termination detection, not matching work",
            r.rounds
        ));
    }
    t.note("final row equals MatchingReport of the finished run bit-for-bit");
    (t, series)
}

/// Runs the experiment (table only).
pub fn run(quick: bool) -> Table {
    run_with_series(quick).0
}

/// [`run_with_series`] plus the metrics surface: an *additional*
/// asynchronous traced run of the same instance is replayed through a
/// [`owp_metrics::MetricsRecorder`] (message counters, send→deliver and
/// PROP→accept latency histograms, termination times) and both final
/// matchings are audited. The synchronous table/series are byte-identical
/// to the un-instrumented run.
pub fn run_with_series_metrics(
    quick: bool,
    reg: &owp_metrics::MetricsRegistry,
) -> (Table, ConvergenceSeries) {
    let (table, series) = run_with_series(quick);

    let p = instance(quick);
    let cfg = owp_simnet::SimConfig::with_seed(18)
        .latency(owp_simnet::LatencyModel::Constant { ticks: 10 })
        .telemetry();
    let (r, log) = owp_core::run_lid_traced(&p, cfg);
    let mut rec = owp_metrics::MetricsRecorder::new(reg);
    rec.consume(&log);

    let mut auditor = owp_metrics::Auditor::new(reg);
    auditor.audit_weights(&p);
    auditor.audit_matching(&p, &r.matching);

    (table, series)
}

#[cfg(test)]
mod tests {
    use super::*;
    use owp_matching::{matching_totals, MatchingReport};

    #[test]
    fn quick_run_trajectory_is_consistent() {
        let p = instance(true);
        let (r, series) = owp_core::run_lid_sync_series(&p);
        assert!(r.terminated);
        // One sample per round plus the round-0 (post-`on_start`) sample.
        assert_eq!(series.len() as u64, r.rounds + 1);

        // The endpoint is exactly what the report computes — same summation
        // sequence, hence bit-for-bit equal floats.
        let last = *series.last().expect("non-empty series");
        let report = MatchingReport::compute(&p, &r.matching);
        let (edges, weight, sat) = matching_totals(&p, &r.matching);
        assert_eq!(last.matched_edges, edges);
        assert_eq!(last.matched_edges, r.matching.size());
        assert_eq!(last.total_weight.to_bits(), weight.to_bits());
        assert_eq!(last.satisfaction_total.to_bits(), sat.to_bits());
        assert_eq!(last.total_weight.to_bits(), report.total_weight.to_bits());
        assert_eq!(
            last.satisfaction_total.to_bits(),
            report.satisfaction_total.to_bits()
        );
        assert_eq!(last.in_flight, 0, "quiescent run has nothing in flight");
        assert_eq!(last.terminated_fraction, 1.0);

        // The rendered table mirrors the series row for row.
        let t = run(true);
        assert_eq!(t.row_count(), series.len());
        let final_row = t.row_count() - 1;
        assert_eq!(t.cell(final_row, 1), edges.to_string());
    }

    #[test]
    fn metrics_variant_records_traffic_and_audits_clean() {
        let reg = owp_metrics::MetricsRegistry::new();
        let (t, series) = run_with_series_metrics(true, &reg);
        assert_eq!(t.row_count(), series.len());
        // The async traced run produced real traffic and matched latencies.
        assert!(reg.counter("messages_sent_total").get() > 0);
        assert!(reg.counter("messages_sent_prop").get() > 0);
        let lat = reg.histogram("message_latency_ticks");
        assert!(lat.count() > 0);
        // Constant-latency model: every delivery takes 10 ticks, plus the
        // occasional tick when the per-link FIFO clamp serializes same-tick
        // sends — so the mean sits in [10, 11).
        assert!(lat.sum() >= lat.count() * 10, "latency below the constant model");
        assert!(lat.sum() < lat.count() * 11, "FIFO slack should stay fractional");
        // Both audit passes were clean.
        assert_eq!(reg.counter("audit_violations_total").get(), 0);
        let ratio = reg.gauge("audit_satisfaction_ratio").get();
        assert!(ratio > 0.0 && ratio <= 1.0, "ratio {ratio}");
    }

    #[test]
    fn stabilization_precedes_quiescence() {
        let (t, series) = run_with_series(true);
        let stable = series.stabilization_round().expect("non-empty");
        let last = series.last().unwrap();
        assert!(stable <= last.round);
        assert!(t.render().contains("stable from round"));
    }
}
