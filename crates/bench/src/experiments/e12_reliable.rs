//! E12 / Table 7 — extension: reliable LID (retransmission layer) vs plain
//! LID under message loss. Plain LID deadlocks and half-locks pairs; the
//! retransmission layer restores 100% termination *and* the exact
//! LIC-equivalent result, at a bounded message premium.

use crate::{mean, Table};
use owp_core::{run_lid, run_lid_reliable};
use owp_matching::lic::{lic, SelectionPolicy};
use owp_matching::Problem;
use owp_simnet::{FaultPlan, LatencyModel, SimConfig};
use rayon::prelude::*;

/// Runs the loss sweep for both variants.
pub fn run(quick: bool) -> Table {
    let seeds: u64 = if quick { 3 } else { 20 };
    let n = if quick { 48 } else { 128 };

    let mut t = Table::new(
        format!("E12 / Table 7 — plain vs reliable LID under loss (gnp n={n}, b=3)"),
        &[
            "variant",
            "loss %",
            "terminated %",
            "≡ LIC %",
            "asym locks",
            "msgs/node",
        ],
    );

    for reliable in [false, true] {
        for loss in [0.0f64, 0.05, 0.10, 0.20, 0.30] {
            let rows: Vec<(bool, bool, f64, f64)> = (0..seeds)
                .into_par_iter()
                .map(|seed| {
                    let p = Problem::random_gnp(n, 10.0 / (n as f64 - 1.0), 3, 900 + seed);
                    let reference = lic(&p, SelectionPolicy::InOrder);
                    let cfg = SimConfig::with_seed(seed)
                        .latency(LatencyModel::Uniform { lo: 1, hi: 20 })
                        .faults(FaultPlan::with_drop_probability(loss));
                    let r = if reliable {
                        run_lid_reliable(&p, cfg, 40)
                    } else {
                        run_lid(&p, cfg)
                    };
                    (
                        r.terminated,
                        r.matching.same_edges(&reference),
                        r.asymmetric_locks as f64,
                        r.stats.sent as f64 / n as f64,
                    )
                })
                .collect();
            let term = rows.iter().filter(|r| r.0).count() as f64 / seeds as f64;
            let same = rows.iter().filter(|r| r.1).count() as f64 / seeds as f64;
            let asym: Vec<f64> = rows.iter().map(|r| r.2).collect();
            let msgs: Vec<f64> = rows.iter().map(|r| r.3).collect();
            if reliable {
                assert_eq!(term, 1.0, "reliable LID must always terminate");
                assert_eq!(same, 1.0, "reliable LID must always equal LIC");
            }
            t.row(vec![
                if reliable { "reliable" } else { "plain" }.to_string(),
                format!("{:.0}", loss * 100.0),
                format!("{:.0}", term * 100.0),
                format!("{:.0}", same * 100.0),
                format!("{:.2}", mean(&asym)),
                format!("{:.1}", mean(&msgs)),
            ]);
        }
    }
    t.note("retransmission (paper future work) restores the Theorem 3 guarantee under loss");
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_run_reliable_rows_perfect() {
        let t = super::run(true);
        assert_eq!(t.row_count(), 10);
        // Rows 5..10 are the reliable variant: 100/100 across all loss rates.
        for r in 5..10 {
            assert_eq!(t.cell(r, 2), "100");
            assert_eq!(t.cell(r, 3), "100");
        }
    }
}
