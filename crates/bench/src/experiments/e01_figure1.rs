//! E1 — exact reproduction of the paper's Figure 1 (§3): the worked
//! satisfaction computation with `b_i = 4`, `|L_i| = 7`, connections at
//! preference ranks {0, 1, 3, 5}, totalling `S_i = 0.893`.

use crate::Table;
use owp_graph::generators::star;
use owp_graph::{NodeId, PreferenceTable, Quotas};
use owp_matching::satisfaction::{node_satisfaction, ordered_connections};

/// Runs the experiment and renders the per-connection penalty table.
pub fn run() -> Table {
    let g = star(8);
    let prefs = PreferenceTable::by_node_id(&g);
    let quotas = Quotas::uniform(&g, 4);
    let i = NodeId(0);
    let connections = vec![NodeId(1), NodeId(2), NodeId(4), NodeId(6)];
    let ordered = ordered_connections(&prefs, i, &connections);

    let (b, l) = (4.0, 7.0);
    let mut t = Table::new(
        "E1 / Figure 1 — satisfaction computation (b=4, |L|=7)",
        &["connection Q_i(j)", "rank R_i(j)", "penalty (R−Q)/(bL)"],
    );
    let mut penalty_sum = 0.0;
    for (q, &j) in ordered.iter().enumerate() {
        let r = prefs.rank(i, j).expect("neighbour") as f64;
        let penalty = (r - q as f64) / (b * l);
        penalty_sum += penalty;
        t.row(vec![
            q.to_string(),
            format!("{}", r as u32),
            format!("{penalty:.5}"),
        ]);
    }
    let s = node_satisfaction(&prefs, &quotas, i, &connections);
    t.note(format!(
        "S_i = c/b − Σpenalty = 1 − {penalty_sum:.5} = {s:.3} (paper: 0.893)"
    ));
    assert_eq!(format!("{s:.3}"), "0.893", "Figure 1 reproduction failed");
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn reproduces_the_paper_value() {
        let t = super::run();
        assert_eq!(t.row_count(), 4);
        // Ranks column reads 0, 1, 3, 5.
        assert_eq!(t.cell(0, 1), "0");
        assert_eq!(t.cell(2, 1), "3");
        assert_eq!(t.cell(3, 1), "5");
    }
}
