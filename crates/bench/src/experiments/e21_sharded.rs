//! E21 — sharded two-phase repair: sustained structural-churn throughput
//! and batch-latency tails of the partitioned engine vs thread budget.
//!
//! The engine is split into `k = 8` contiguous-range shards and absorbs
//! batches of **structural** events only (leaves/rejoins, edge churn) —
//! the zero-allocation hot path DESIGN.md §11 promises. The event stream
//! is a *self-inverse cycle*: perturbation batches paired with their
//! exact undo batches, so one warm-up pass reaches every arena's
//! high-water mark and the measured pass traverses identical repair work.
//! That makes three numbers honest at once:
//!
//! * **events/s** — sustained throughput over the measured cycle;
//! * **p99 ms** — batch-latency tail from the log₂ histogram's
//!   `quantile_upper_bound` (a bucket upper bound, not an interpolation);
//! * **allocs/batch** — heap allocations per batch observed by the
//!   counting global allocator `owp-bench` installs ([`crate::alloc_shim`]),
//!   which must be 0 at `threads = 1` after warm-up.
//!
//! Every measured batch is certified: `Engine::certify` re-runs LIC from
//! scratch and demands bit-identity, at every thread budget. The speedup
//! column is informational — with the `parallel` feature off (the default
//! build) or on a single-core host the thread budget cannot help; the
//! certified claim is that it never changes a single bit either way.
//!
//! Scale: `--quick` runs n = 10⁴ at threads {1, 4} (the CI smoke job);
//! the full run defaults to n = 10⁶ at threads {1, 2, 4, 8} and honors
//! `OWP_E21_N` (e.g. `OWP_E21_N=10000000` for the 10⁷ configuration, or a
//! smaller value on CI-class hardware — `bench_guard` measures and checks
//! under the same variable, so the comparison stays apples-to-apples).

use crate::{mean, Table};
use owp_engine::{DeltaReport, Engine, EngineEvent};
use owp_graph::{Graph, NodeId};
use owp_matching::Problem;
use owp_metrics::MetricsRegistry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Shard count — fixed so the thread sweep is the only moving part.
const SHARDS: usize = 8;

/// Measured batches per thread configuration. Even: the cycle is built
/// from perturb/undo *pairs*, so applying all of them returns the engine
/// to its initial state and the cycle can repeat verbatim.
const BATCHES: usize = 6;

/// Runs the sharded-repair sweep; the single table is the `bench_guard`
/// schema (keyed by the threads column, build/repair wall times guarded
/// against `BENCH_e21.json`).
pub fn run(quick: bool) -> Vec<Table> {
    run_inner(quick, None)
}

/// [`run`] with metrics: batch wall times land in an
/// `engine_sharded_batch_wall_us` histogram, the per-shard repair gauges
/// are published from the last engine, and the `threads = 1` allocation
/// measurement feeds the `engine_allocations_per_batch` gauge.
pub fn run_with_metrics(quick: bool, reg: &MetricsRegistry) -> Vec<Table> {
    run_inner(quick, Some(reg))
}

fn scale(quick: bool) -> usize {
    if quick {
        return 10_000;
    }
    std::env::var("OWP_E21_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000)
}

fn run_inner(quick: bool, reg: Option<&MetricsRegistry>) -> Vec<Table> {
    let n = scale(quick);
    let threads: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4, 8] };
    // 0.5% of the universe churns per batch — the same regime as E19's
    // mid-size batches, but all-structural.
    let events_per_batch = (n / 200).max(10);

    let mut rng = StdRng::seed_from_u64(0xE21);
    let g = owp_graph::generators::barabasi_albert(n, 5, &mut rng);
    let m = g.edge_count();
    let p = Problem::random_over(g.clone(), 4, 0xE21);
    let cycle = structural_cycle(&g, events_per_batch, 0xE21C);

    let mut t = Table::new(
        format!(
            "E21 — sharded two-phase repair on ba(m=5), n={n}, m={m}, k={SHARDS} shards, b=4 \
             (structural churn, {} batches/config)",
            cycle.len()
        ),
        &[
            "threads",
            "events",
            "build ms",
            "repair ms",
            "p99 ms",
            "events/s",
            "speedup",
            "allocs/batch",
        ],
    );

    // Throwaway config: the very first engine construction, repair cycle
    // and certification fault in pages and allocator arenas that every
    // later config reuses for free. Without this warm pass the first
    // measured row (threads = 1) reads systematically slower than the
    // rest — which would both distort the guarded "build ms"/"repair ms"
    // columns and fake a thread-scaling effect that row order, not
    // parallelism, produced.
    {
        let mut warm = Engine::builder(p.clone()).shards(SHARDS).threads(1).build();
        let mut report = DeltaReport::default();
        for batch in &cycle {
            warm.apply_batch_into(batch, &mut report).expect("cycle batches are valid");
        }
        warm.certify().expect("warm-up engine is canonical");
    }

    let mut baseline_repair_ms = f64::NAN;
    let mut boundary_note = String::new();
    for &budget in threads {
        // Per-config histogram for the latency tail: a fresh registry so
        // quantiles never mix thread budgets (registry handles by static
        // key are shared families).
        let local = MetricsRegistry::new();
        let wall_hist = local.histogram("e21_batch_wall_us");
        let global_hist = reg.map(|r| r.histogram("engine_sharded_batch_wall_us"));

        let t0 = Instant::now();
        let mut engine = Engine::builder(p.clone())
            .shards(SHARDS)
            .threads(budget)
            .build();
        let build_ms = t0.elapsed().as_secs_f64() * 1e3;
        let mut report = DeltaReport::default();

        // Warm-up: one full cycle reaches the arenas' high-water marks;
        // the measured cycle below repeats the identical work.
        for batch in &cycle {
            engine.apply_batch_into(batch, &mut report).expect("cycle batches are valid");
        }
        engine.certify().expect("warmed sharded engine is canonical");

        let mut walls_ms = Vec::with_capacity(cycle.len());
        let mut allocs = 0u64;
        for (no, batch) in cycle.iter().enumerate() {
            let mark = owp_metrics::allocation_count();
            let t1 = Instant::now();
            engine.apply_batch_into(batch, &mut report).expect("cycle batches are valid");
            let wall = t1.elapsed();
            allocs += owp_metrics::allocations_since(mark);
            walls_ms.push(wall.as_secs_f64() * 1e3);
            wall_hist.observe(wall.as_micros() as u64);
            if let Some(h) = &global_hist {
                h.observe(wall.as_micros() as u64);
            }
            engine.certify().unwrap_or_else(|err| {
                panic!("threads={budget} batch {no}: certification failed: {err}")
            });
        }

        let repair_ms = mean(&walls_ms);
        if baseline_repair_ms.is_nan() {
            baseline_repair_ms = repair_ms;
        }
        let p99_ms =
            wall_hist.quantile_upper_bound(0.99).unwrap_or(0) as f64 / 1e3;
        let events_per_s = events_per_batch as f64 / (repair_ms / 1e3).max(f64::MIN_POSITIVE);
        let allocs_per_batch = allocs as f64 / cycle.len() as f64;

        if let Some(r) = reg {
            if budget == 1 {
                owp_metrics::publish_allocations_per_batch(r, allocs, cycle.len() as u64);
            }
            owp_metrics::publish_shard_gauges(r, &engine);
        }
        if boundary_note.is_empty() {
            let map = engine.shard_map();
            boundary_note = format!(
                "partition: {SHARDS} contiguous id-range shards, {} boundary edges \
                 ({:.2}% of m) resolved by the sequential phase-2 merge",
                map.boundary_count(),
                100.0 * map.boundary_fraction(),
            );
        }

        t.row(vec![
            budget.to_string(),
            events_per_batch.to_string(),
            format!("{build_ms:.3}"),
            format!("{repair_ms:.3}"),
            format!("{p99_ms:.3}"),
            format!("{events_per_s:.0}"),
            format!("{:.2}", baseline_repair_ms / repair_ms.max(f64::MIN_POSITIVE)),
            format!("{allocs_per_batch:.1}"),
        ]);
    }

    t.note(boundary_note);
    t.note(
        "every measured batch is certified bit-identical to a from-scratch LIC run, \
         at every thread budget",
    );
    t.note(
        "allocs/batch counts heap allocations after warm-up (self-inverse cycle); \
         0.0 at threads=1 is the DESIGN.md §11 steady-state contract, and budgets > 1 \
         only pay for worker spawns when the `parallel` feature is compiled in",
    );
    t.note(
        "speedup is informational: single-core hosts and `parallel`-less builds run \
         phase 1 sequentially; correctness never depends on it",
    );
    vec![t]
}

/// A self-inverse structural cycle: [`BATCHES`]/2 perturbation batches of
/// `len` events (≈60% node leaves, 40% edge removals), each immediately
/// followed by its exact undo batch (reverse order, inverted events).
/// Applying the whole cycle is the identity on membership state, so
/// consecutive cycles traverse identical repair work — the property the
/// warm-up/measure allocation protocol and the repeatable timing loop
/// both rely on.
fn structural_cycle(g: &Graph, len: usize, seed: u64) -> Vec<Vec<EngineEvent>> {
    let n = g.node_count();
    let m = g.edge_count();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut active = vec![true; n];
    let mut present = vec![true; m];
    let endpoints: Vec<(NodeId, NodeId)> = g.edges().map(|e| g.endpoints(e)).collect();

    let mut batches = Vec::with_capacity(BATCHES);
    for _ in 0..BATCHES / 2 {
        let mut forward = Vec::with_capacity(len);
        let mut undo = Vec::with_capacity(len);
        let mut flipped_nodes = Vec::new();
        let mut flipped_edges = Vec::new();
        for _ in 0..len {
            loop {
                if rng.gen_range(0u32..10) < 6 {
                    let i = rng.gen_range(0..n);
                    if active[i] {
                        active[i] = false;
                        flipped_nodes.push(i);
                        let node = NodeId(i as u32);
                        forward.push(EngineEvent::NodeLeave { node });
                        undo.push(EngineEvent::NodeJoin { node });
                        break;
                    }
                } else {
                    let e = rng.gen_range(0..m);
                    if present[e] {
                        present[e] = false;
                        flipped_edges.push(e);
                        let (u, v) = endpoints[e];
                        forward.push(EngineEvent::EdgeRemove { u, v });
                        undo.push(EngineEvent::EdgeAdd { u, v });
                        break;
                    }
                }
            }
        }
        undo.reverse();
        // The undo batch restores every flag it flipped, so the next pair
        // generates against the same (full) membership state.
        for i in flipped_nodes {
            active[i] = true;
        }
        for e in flipped_edges {
            present[e] = true;
        }
        batches.push(forward);
        batches.push(undo);
    }
    batches
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_certifies_and_reports_consistent_numbers() {
        let tables = run(true);
        assert_eq!(tables.len(), 1);
        let t = &tables[0];
        assert_eq!(t.row_count(), 2, "quick sweeps threads 1 and 4");
        for r in 0..t.row_count() {
            let build: f64 = t.cell(r, 2).parse().unwrap();
            let repair: f64 = t.cell(r, 3).parse().unwrap();
            let p99: f64 = t.cell(r, 4).parse().unwrap();
            let evps: f64 = t.cell(r, 5).parse().unwrap();
            let speedup: f64 = t.cell(r, 6).parse().unwrap();
            let allocs: f64 = t.cell(r, 7).parse().unwrap();
            assert!(build > 0.0 && repair > 0.0 && evps > 0.0);
            assert!(p99 * 1.000_001 >= repair / BATCHES as f64, "p99 is an upper bound");
            assert!(speedup > 0.0);
            assert!(allocs >= 0.0);
        }
        assert_eq!(t.cell(0, 0), "1");
        assert_eq!(t.cell(0, 6), "1.00", "speedup is relative to threads=1");
    }

    /// The acceptance assertion behind the table's `allocs/batch` column:
    /// a warmed-up engine applies structural batches without touching the
    /// heap, observed through the `engine_allocations_per_batch` gauge.
    /// The allocation counter is process-global and other tests allocate
    /// concurrently, so the measurement retries until an interference-free
    /// window is found — a genuine contract break never reads 0.
    #[test]
    fn steady_state_structural_batches_allocate_nothing() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = owp_graph::generators::barabasi_albert(600, 4, &mut rng);
        let cycle = structural_cycle(&g, 12, 77);
        let mut engine = Engine::builder(Problem::random_over(g, 3, 9))
            .shards(4)
            .threads(1)
            .build();
        let mut report = DeltaReport::default();
        for batch in &cycle {
            engine.apply_batch_into(batch, &mut report).unwrap();
        }

        let mut best = u64::MAX;
        for _ in 0..40 {
            let mark = owp_metrics::allocation_count();
            for batch in &cycle {
                engine.apply_batch_into(batch, &mut report).unwrap();
            }
            best = best.min(owp_metrics::allocations_since(mark));
            if best == 0 {
                break;
            }
        }
        assert_eq!(best, 0, "structural batches allocated after warm-up");
        engine.certify().expect("measured engine is canonical");

        let reg = MetricsRegistry::new();
        owp_metrics::publish_allocations_per_batch(&reg, best, cycle.len() as u64);
        assert_eq!(reg.gauge(owp_metrics::ALLOCATIONS_PER_BATCH).get(), 0.0);
    }

    #[test]
    fn metrics_variant_publishes_shard_and_alloc_gauges() {
        let reg = MetricsRegistry::new();
        let tables = run_with_metrics(true, &reg);
        assert_eq!(tables.len(), 1);
        // 2 thread budgets × BATCHES measured batches.
        assert_eq!(
            reg.histogram("engine_sharded_batch_wall_us").count(),
            2 * BATCHES as u64
        );
        let json = reg.snapshot().to_json();
        assert!(json.contains("engine_shards"));
        assert!(json.contains("engine_boundary_fraction"));
        assert!(json.contains(owp_metrics::ALLOCATIONS_PER_BATCH));
        for s in 0..SHARDS {
            assert!(json.contains(&format!("engine_shard_evaluated_{s}")), "shard {s}");
        }
    }

    #[test]
    fn the_cycle_is_self_inverse() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = owp_graph::generators::barabasi_albert(200, 3, &mut rng);
        let cycle = structural_cycle(&g, 9, 5);
        assert_eq!(cycle.len(), BATCHES);
        let p = Problem::random_over(g, 2, 3);
        let mut engine = Engine::new(p.clone());
        for batch in &cycle {
            engine.apply_batch(batch).unwrap();
        }
        let fresh = Engine::new(p);
        assert!(
            engine.matching().same_edges(fresh.matching()),
            "one full cycle must be the identity on the matching"
        );
    }
}
