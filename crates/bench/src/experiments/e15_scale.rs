//! E15 / Table 10 — scale: the full distributed construction on overlay
//! sizes real deployments care about. Reports wall-clock time of the whole
//! pipeline (generate → preferences → weights → simulate LID → report),
//! messages per node, and sync rounds. Message locality (E4) predicts flat
//! per-node cost; this confirms it end to end.
//!
//! A second table breaks the pipeline down with a [`PhaseProfile`]
//! (generate / build{prefs,weights,order} / simulate / sync / report),
//! merged across the sweep, answering "where do the milliseconds live"
//! without a sampling profiler. The instance construction goes through
//! [`Problem::random_over_profiled`], which is bit-identical to
//! [`Problem::random_over`] — same RNG call sequence, same weights, same
//! edge order — so the profiled sweep measures exactly the unprofiled
//! pipeline.

use crate::Table;
use owp_core::{run_lid, run_lid_sync};
use owp_matching::{MatchingReport, Problem};
use owp_simnet::SimConfig;
use owp_telemetry::PhaseProfile;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Runs the scale sweep. Returns the headline table (schema tracked by
/// `BENCH_e15.json` and `bench_guard`) plus the phase-profile table.
pub fn run(quick: bool) -> Vec<Table> {
    let sizes: &[usize] = if quick {
        &[5_000, 20_000]
    } else {
        &[10_000, 50_000, 100_000]
    };

    let mut t = Table::new(
        "E15 / Table 10 — end-to-end scale (BA m=5, b=4, one seed per size)",
        &[
            "n",
            "edges",
            "build ms",
            "LID ms",
            "msgs/node",
            "sync rounds",
            "mean sat",
        ],
    );

    let mut prof = PhaseProfile::new();
    for &n in sizes {
        let t0 = Instant::now();
        let g = prof.time("generate", |_| {
            let mut rng = StdRng::seed_from_u64(n as u64);
            owp_graph::generators::barabasi_albert(n, 5, &mut rng)
        });
        let edges = g.edge_count();
        let p = prof.time("build", |prof| Problem::random_over_profiled(g, 4, 99, prof));
        let build_ms = t0.elapsed().as_millis();

        let t1 = Instant::now();
        let r = prof.time("simulate", |_| run_lid(&p, SimConfig::with_seed(1)));
        let lid_ms = t1.elapsed().as_millis();
        assert!(r.terminated, "n={n}: LID must terminate");
        assert_eq!(r.asymmetric_locks, 0);

        let sync = prof.time("sync", |_| run_lid_sync(&p));
        assert!(sync.terminated);

        let report = prof.time("report", |_| MatchingReport::compute(&p, &r.matching));
        t.row(vec![
            n.to_string(),
            edges.to_string(),
            build_ms.to_string(),
            lid_ms.to_string(),
            format!("{:.1}", r.stats.sent_per_node(n)),
            sync.rounds.to_string(),
            format!("{:.3}", report.satisfaction_mean),
        ]);
    }
    t.note("per-node message cost and round count stay flat while n grows 10×: the protocol is local end to end");

    vec![t, phase_table(&prof, sizes.len())]
}

/// Renders the merged profile as a table (one row per phase path).
fn phase_table(prof: &PhaseProfile, runs: usize) -> Table {
    let mut t = Table::new(
        format!("E15 — pipeline phase profile (merged over {runs} sizes)"),
        &["phase", "calls", "total ms", "share %"],
    );
    let denom = prof.total().as_secs_f64().max(f64::MIN_POSITIVE);
    for e in prof.entries() {
        t.row(vec![
            e.path.clone(),
            e.calls.to_string(),
            format!("{:.1}", e.total.as_secs_f64() * 1e3),
            format!("{:.1}", 100.0 * e.total.as_secs_f64() / denom),
        ]);
    }
    t.note("nested phases (build/…) are included in their parent; shares are of the top-level total");
    t
}

#[cfg(test)]
mod tests {
    /// The scale rows are expensive; the quick harness keeps them modest and
    /// asserts the locality claim (msgs/node roughly constant across sizes).
    #[test]
    fn quick_run_is_local() {
        let tables = super::run(true);
        assert_eq!(tables.len(), 2);
        let t = &tables[0];
        assert_eq!(t.row_count(), 2);
        let m0: f64 = t.cell(0, 4).parse().unwrap();
        let m1: f64 = t.cell(1, 4).parse().unwrap();
        assert!((m0 - m1).abs() / m0 < 0.25, "msgs/node should be flat: {m0} vs {m1}");

        // The phase table covers the whole pipeline, nested build phases
        // included, each entered once per size.
        let phases = &tables[1];
        let paths: Vec<&str> = (0..phases.row_count()).map(|r| phases.cell(r, 0)).collect();
        for expect in [
            "generate",
            "build",
            "build/prefs",
            "build/weights",
            "build/order",
            "simulate",
            "sync",
            "report",
        ] {
            assert!(paths.contains(&expect), "missing phase {expect}: {paths:?}");
        }
        for r in 0..phases.row_count() {
            let calls: u64 = phases.cell(r, 1).parse().unwrap();
            assert_eq!(calls, 2, "each phase entered once per size");
        }
    }
}
