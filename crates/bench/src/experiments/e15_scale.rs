//! E15 / Table 10 — scale: the full distributed construction on overlay
//! sizes real deployments care about. Reports wall-clock time of the whole
//! pipeline (generate → preferences → weights → simulate LID → report),
//! messages per node, and sync rounds. Message locality (E4) predicts flat
//! per-node cost; this confirms it end to end.

use crate::Table;
use owp_core::{run_lid, run_lid_sync};
use owp_matching::{MatchingReport, Problem};
use owp_simnet::SimConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Runs the scale sweep.
pub fn run(quick: bool) -> Table {
    let sizes: &[usize] = if quick {
        &[5_000, 20_000]
    } else {
        &[10_000, 50_000, 100_000]
    };

    let mut t = Table::new(
        "E15 / Table 10 — end-to-end scale (BA m=5, b=4, one seed per size)",
        &[
            "n",
            "edges",
            "build ms",
            "LID ms",
            "msgs/node",
            "sync rounds",
            "mean sat",
        ],
    );

    for &n in sizes {
        let t0 = Instant::now();
        let mut rng = StdRng::seed_from_u64(n as u64);
        let g = owp_graph::generators::barabasi_albert(n, 5, &mut rng);
        let edges = g.edge_count();
        let p = Problem::random_over(g, 4, 99);
        let build_ms = t0.elapsed().as_millis();

        let t1 = Instant::now();
        let r = run_lid(&p, SimConfig::with_seed(1));
        let lid_ms = t1.elapsed().as_millis();
        assert!(r.terminated, "n={n}: LID must terminate");
        assert_eq!(r.asymmetric_locks, 0);

        let sync = run_lid_sync(&p);
        assert!(sync.terminated);

        let report = MatchingReport::compute(&p, &r.matching);
        t.row(vec![
            n.to_string(),
            edges.to_string(),
            build_ms.to_string(),
            lid_ms.to_string(),
            format!("{:.1}", r.stats.sent_per_node(n)),
            sync.rounds.to_string(),
            format!("{:.3}", report.satisfaction_mean),
        ]);
    }
    t.note("per-node message cost and round count stay flat while n grows 10×: the protocol is local end to end");
    t
}

#[cfg(test)]
mod tests {
    /// The scale rows are expensive; the quick harness keeps them modest and
    /// asserts the locality claim (msgs/node roughly constant across sizes).
    #[test]
    fn quick_run_is_local() {
        let t = super::run(true);
        assert_eq!(t.row_count(), 2);
        let m0: f64 = t.cell(0, 4).parse().unwrap();
        let m1: f64 = t.cell(1, 4).parse().unwrap();
        assert!((m0 - m1).abs() / m0 < 0.25, "msgs/node should be flat: {m0} vs {m1}");
    }
}
