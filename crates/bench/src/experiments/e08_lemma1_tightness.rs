//! E8 / Table 4 — Lemma 1 tightness: on the adversarial gadget family the
//! centre node is forced into its `b` bottom-ranked neighbours, and its
//! static share of satisfaction is *exactly* `½(1 + 1/b)` — the analysis is
//! not loose.

use crate::Table;
use owp_graph::NodeId;
use owp_matching::bounds::{lemma1_tight_instance, modified_bound};
use owp_matching::lic::{lic, SelectionPolicy};
use owp_matching::satisfaction::{node_satisfaction, static_dynamic_split};

/// Runs the gadget family `b ∈ 1..=5`, `l = 3b`.
pub fn run() -> Table {
    let mut t = Table::new(
        "E8 / Table 4 — Lemma 1 tightness on the adversarial gadget (l = 3b)",
        &["b", "centre ranks matched", "centre S_i", "static share", "½(1+1/b)"],
    );
    for b in 1u32..=5 {
        let l = 3 * b;
        let p = lemma1_tight_instance(b, l);
        let m = lic(&p, SelectionPolicy::InOrder);
        let centre = NodeId(0);
        let mut ranks: Vec<u32> = m
            .connections(centre)
            .iter()
            .map(|&j| p.prefs.rank(centre, j).expect("neighbour"))
            .collect();
        ranks.sort_unstable();
        let sat = node_satisfaction(&p.prefs, &p.quotas, centre, m.connections(centre));
        let (s, d) = static_dynamic_split(&p.prefs, &p.quotas, centre, m.connections(centre));
        let share = s / (s + d);
        let bound = modified_bound(b);
        assert!(
            (share - bound).abs() < 1e-12,
            "b={b}: static share {share} != bound {bound} — gadget not tight"
        );
        t.row(vec![
            b.to_string(),
            format!("{ranks:?}"),
            format!("{sat:.4}"),
            format!("{share:.4}"),
            format!("{bound:.4}"),
        ]);
    }
    t.note("static share equals the analytic bound to machine precision: Lemma 1 is tight");
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn gadget_is_tight_for_all_b() {
        let t = super::run();
        assert_eq!(t.row_count(), 5);
        for r in 0..5 {
            assert_eq!(t.cell(r, 3), t.cell(r, 4), "share must equal bound");
        }
    }
}
