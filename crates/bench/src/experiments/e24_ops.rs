//! E24 — ops-plane overhead: what the live operations plane (admin
//! endpoint + continuous auditor + per-frame request spans, DESIGN.md
//! §14) costs the matchd ingest path.
//!
//! The E23 ingest sweep runs twice per linger setting over the same
//! universe: once with the ops plane **off** (no admin listener, no
//! auditor, spans still stamped — they are unconditionally part of the
//! frame path) and once **on**, with the continuous auditor at its
//! default 200 ms cadence and a scraper thread playing Prometheus:
//! `GET /metrics` + `/status` + `/readyz` every second for the whole
//! ingest window (quick mode tightens both so short windows still see
//! traffic). The cadences are the *operating contract*, not a stress
//! test — a 1 s scrape is already 15–60× Prometheus' default interval,
//! and a scraper in a zero-sleep loop measures how fast HTTP can
//! starve the ingest clients of the CPU, which on a small machine is
//! arbitrarily bad and says nothing about the plane's design cost. The
//! headline column is **overhead %** — the relative events/s loss of
//! ops-on against ops-off — which `bench_guard e24` caps at an
//! **absolute 5%**: the observability budget is a design contract
//! (ISSUE: ops plane must ride beside the hot path, never in it).
//!
//! Each rep runs one off and one on window seconds apart and prices
//! the pair; the reported overhead is the **median over the pairs**,
//! and the order within a rep alternates (off-on, on-off, ...). The
//! two tricks target the two noise shapes a shared box actually
//! produces: the median discards pairs wrecked by a one-off burst
//! (page-cache flush, neighbor VM), and the alternation stops a
//! monotone machine-wide drift (CPU-credit throttling, thermal
//! clamps) from always taxing the second run of the pair and booking
//! the drift as fake overhead. The **contract row** (linger = -1)
//! pools every pair across the linger grid — three times the sample —
//! and is the only row `bench_guard e24` caps; per-linger medians are
//! informational. Both modes pause
//! identically before the measured window, which lets the first audit
//! cycle — the one that pays the one-off universe re-derivation before
//! the auditor's structure cache takes over (DESIGN.md §14) — land
//! outside the clock; what the table prices is the *steady state* an
//! operator lives with: masked audit cycles under the auditor's 1%
//! duty-cycle cap, plus the scrape traffic.
//!
//! The second table reports the request-span split the ops plane
//! surfaces in `/status`: the queue-wait / apply / ack legs of the
//! SUBMIT spans measured by the engine owner during the final ops-on
//! run, straight from the `matchd_span_*` histograms.
//!
//! Scale: `--quick` uses n = 2000 with lingers {0, 2000}µs; the full
//! run uses n = 20000 (honors `OWP_E24_N`) with lingers {0, 500,
//! 2000}µs — the same grid as E23, so the two reports read side by
//! side.

use crate::Table;
use owp_matchd::{
    client_stream, from_spec, FsyncPolicy, Matchd, MatchdClient, MatchdConfig, OpsStatus,
    SubmitOutcome,
};
use owp_metrics::MetricsRegistry;
use std::io::Write as _;
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Events each client submits per configuration (E23's chunking).
const CHUNK: usize = 16;
/// Client threads (= disjoint node-ownership partitions).
const CLIENTS: usize = 4;

/// Runs the overhead sweep + span-split table.
pub fn run(quick: bool) -> Vec<Table> {
    let n = scale(quick);
    let reps = if quick { 2 } else { 5 };
    let lingers_us: &[u64] = if quick { &[0, 2000] } else { &[0, 500, 2000] };
    let spec = format!("ba:{n},3,2,42");
    let universe = from_spec(&spec).expect("spec");
    // Long enough windows that per-window fixed costs (one audit cycle,
    // a few scrape rounds) amortize the way they do in a long-lived
    // daemon; quick mode keeps the windows short and only checks
    // plumbing, not the overhead contract.
    let events_per_client = if quick { (n / 5).max(200) } else { n };
    let (load, warmup) = if quick {
        (
            OpsLoad {
                scrape_every: Duration::from_millis(10),
                audit_every: Duration::from_millis(25),
            },
            Duration::from_millis(150),
        )
    } else {
        (
            OpsLoad {
                scrape_every: Duration::from_millis(1000),
                audit_every: Duration::from_millis(200),
            },
            Duration::from_millis(500),
        )
    };

    let mut overhead = Table::new(
        format!(
            "E24 — ops-plane overhead on the E23 ingest sweep ({spec}): {CLIENTS} clients × \
             {events_per_client} events, ops on = admin endpoint scraped every {} ms + \
             {} ms continuous auditor, median overhead over {reps} alternating off/on pairs",
            load.scrape_every.as_millis(),
            load.audit_every.as_millis(),
        ),
        &[
            "linger us",
            "events",
            "off ms",
            "on ms",
            "evps off",
            "evps on",
            "overhead %",
            "audit passes",
            "scrapes",
            "p99 on ms",
        ],
    );
    let mut spans = Table::new(
        "E24 — SUBMIT request-span split during the final ops-on run (matchd_span_* \
         histograms, microseconds): queue-wait vs apply vs ack as surfaced in /status"
            .to_string(),
        &["leg", "n", "mean us", "p50 us", "p95 us", "p99 us"],
    );

    let mut last_on_registry = None;
    // Pooled across the whole linger grid: the capped contract row.
    let mut all_pairs: Vec<f64> = Vec::new();
    let mut total_events = 0u64;
    let mut sum_off = 0.0f64;
    let mut sum_on = 0.0f64;
    let mut audits_total = 0u64;
    let mut scrapes_total = 0u64;
    let mut p99_max = 0.0f64;
    for &linger in lingers_us {
        let mut best_off = f64::INFINITY;
        let mut best_on = f64::INFINITY;
        let mut acked_total = 0u64;
        let mut audit_passes = 0u64;
        let mut scrapes = 0u64;
        let mut p99_on_ms = 0.0f64;
        let mut pair_overheads = Vec::with_capacity(reps);
        for rep in 0..reps {
            // Interleave one off and one on run per rep, and alternate
            // which mode leads: a monotone machine-wide drift across the
            // sweep (CPU-credit throttling on shared VMs, thermal clamps)
            // always taxes whichever run comes second, so a fixed
            // off-then-on order would book that drift as fake overhead.
            let run_off = |rep: usize| {
                one_ingest(
                    &universe,
                    linger,
                    events_per_client,
                    None,
                    warmup,
                    &format!("off-{linger}-{rep}"),
                )
            };
            let run_on = |rep: usize| {
                one_ingest(
                    &universe,
                    linger,
                    events_per_client,
                    Some(load),
                    warmup,
                    &format!("on-{linger}-{rep}"),
                )
            };
            let (off_res, on_res) = if rep % 2 == 0 {
                let off = run_off(rep);
                let on = run_on(rep);
                (off, on)
            } else {
                let on = run_on(rep);
                let off = run_off(rep);
                (off, on)
            };
            let (ms_off, _, _, _) = off_res;
            let (ms_on, acked, reg, scraped) = on_res;
            best_off = best_off.min(ms_off);
            // overhead of this adjacent pair: the two runs sit seconds
            // apart, so slow machine states hit both sides or neither.
            pair_overheads.push(100.0 * (ms_on - ms_off) / ms_on.max(f64::MIN_POSITIVE));
            if ms_on < best_on {
                best_on = ms_on;
                p99_on_ms = reg
                    .histogram("matchd_submit_wall_us")
                    .quantile_upper_bound(0.99)
                    .unwrap_or(0) as f64
                    / 1e3;
            }
            acked_total = acked;
            audit_passes = reg.counter(owp_metrics::MATCHD_AUDIT_PASSES).get();
            scrapes += scraped;
            last_on_registry = Some(reg);
        }
        let evps_off = acked_total as f64 / (best_off / 1e3).max(f64::MIN_POSITIVE);
        let evps_on = acked_total as f64 / (best_on / 1e3).max(f64::MIN_POSITIVE);
        // Median over the per-rep pairs: a single noise burst (page-cache
        // flush, neighbor VM) can wreck one pair without moving the
        // reported number, where a best-of-walls ratio lets one unlucky
        // mode-wide streak fake double-digit overhead.
        all_pairs.extend_from_slice(&pair_overheads);
        total_events += acked_total;
        sum_off += best_off;
        sum_on += best_on;
        audits_total += audit_passes;
        scrapes_total += scrapes;
        p99_max = p99_max.max(p99_on_ms);
        let overhead_pct = median(&mut pair_overheads);
        overhead.row(vec![
            linger.to_string(),
            acked_total.to_string(),
            format!("{best_off:.3}"),
            format!("{best_on:.3}"),
            format!("{evps_off:.0}"),
            format!("{evps_on:.0}"),
            format!("{overhead_pct:.1}"),
            audit_passes.to_string(),
            scrapes.to_string(),
            format!("{p99_on_ms:.3}"),
        ]);
    }

    // The contract row (linger = -1): median over every off/on pair of
    // the whole grid. This is the value `bench_guard e24` caps at 5% —
    // with sign-symmetric noise (a burst is equally likely to land in
    // the off or the on window of a pair) the pooled median concentrates
    // on the plane's true cost, where a per-linger median over a third
    // of the pairs still swings wider than the budget on a shared box.
    let evps_off_all = total_events as f64 / (sum_off / 1e3).max(f64::MIN_POSITIVE);
    let evps_on_all = total_events as f64 / (sum_on / 1e3).max(f64::MIN_POSITIVE);
    overhead.row(vec![
        "-1".to_string(),
        total_events.to_string(),
        format!("{sum_off:.3}"),
        format!("{sum_on:.3}"),
        format!("{evps_off_all:.0}"),
        format!("{evps_on_all:.0}"),
        format!("{:.1}", median(&mut all_pairs)),
        audits_total.to_string(),
        scrapes_total.to_string(),
        format!("{p99_max:.3}"),
    ]);

    let reg = last_on_registry.expect("at least one ops-on run");
    for (leg, key) in [
        ("queue", owp_metrics::MATCHD_SPAN_QUEUE_US),
        ("apply", owp_metrics::MATCHD_SPAN_APPLY_US),
        ("ack", owp_metrics::MATCHD_SPAN_ACK_US),
    ] {
        let h = reg.histogram(key);
        spans.row(vec![
            leg.to_string(),
            h.count().to_string(),
            format!("{:.1}", h.mean()),
            format!("{:.1}", h.quantile_upper_bound(0.5).unwrap_or(0) as f64),
            format!("{:.1}", h.quantile_upper_bound(0.95).unwrap_or(0) as f64),
            format!("{:.1}", h.quantile_upper_bound(0.99).unwrap_or(0) as f64),
        ]);
    }

    overhead.note(
        "overhead % = median over off/on rep pairs of 100 × (on − off) / on wall \
         (equivalent to the events/s loss of that pair); the linger = -1 row pools every \
         pair of the grid and is the row bench_guard e24 caps at an absolute 5% — the ops \
         plane (admin listener, continuous auditor, slow-request ring) must ride beside \
         the ingest path, never in it. Per-linger rows report their own (noisier) pair \
         median plus the best wall per mode; the -1 row sums the best walls",
    );
    overhead.note(
        "scrapes counts completed /metrics + /status + /readyz round-trips served while \
         the ingest load ran (summed over reps); audit passes counts clean \
         continuous-audit rendezvous of the final ops-on run",
    );
    spans.note(
        "legs of the owner-measured SUBMIT spans: queue = enqueue → flush start, apply = \
         merged apply_batch + WAL append, ack = view publish → reply sent; the ring of \
         worst spans is in /status, scraped live by owp-inspect ops",
    );
    vec![overhead, spans]
}

/// Median of a small sample (mean of the middle two when even).
fn median(xs: &mut [f64]) -> f64 {
    assert!(!xs.is_empty());
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite overheads"));
    let mid = xs.len() / 2;
    if xs.len() % 2 == 1 {
        xs[mid]
    } else {
        (xs[mid - 1] + xs[mid]) / 2.0
    }
}

fn scale(quick: bool) -> usize {
    if quick {
        return 2_000;
    }
    std::env::var("OWP_E24_N").ok().and_then(|v| v.parse().ok()).unwrap_or(20_000)
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("owp-e24-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One admin scrape over raw HTTP/1.0; returns the body on a 200.
fn scrape(ops: SocketAddr, path: &str) -> Option<String> {
    let mut s = TcpStream::connect(ops).ok()?;
    s.set_read_timeout(Some(Duration::from_secs(5))).ok()?;
    write!(s, "GET {path} HTTP/1.0\r\n\r\n").ok()?;
    match owp_matchd::http::read_response(&mut s, 8 << 20) {
        Ok((200, body)) => Some(body),
        _ => None,
    }
}

/// The ops-on side's operating cadence: how often the scraper makes its
/// `/metrics` + `/status` + `/readyz` round and how often the auditor
/// probes the owner.
#[derive(Clone, Copy)]
struct OpsLoad {
    scrape_every: Duration,
    audit_every: Duration,
}

/// One full ingest run: a fresh daemon (ops plane on or off), 4 client
/// partitions, every chunk retried through BUSY. With ops on, a scraper
/// thread hits `/metrics`, `/status`, and `/readyz` at the configured
/// cadence for the whole window. Returns (wall ms, acked events,
/// registry, scrapes).
fn one_ingest(
    universe: &owp_matching::Problem,
    linger_us: u64,
    events_per_client: usize,
    ops: Option<OpsLoad>,
    warmup: Duration,
    tag: &str,
) -> (f64, u64, MetricsRegistry, u64) {
    let dir = scratch(tag);
    let registry = MetricsRegistry::new();
    let mut config = MatchdConfig::new(&dir);
    config.max_linger = Duration::from_micros(linger_us);
    config.fsync = FsyncPolicy::OnSnapshot;
    // No periodic snapshots inside the measured window: their fsyncs are
    // shared-disk latency noise uncorrelated between the paired off/on
    // windows, and E23's durability table already prices them. The
    // graceful-shutdown snapshot still runs (outside the clock).
    config.snapshot_every = 0;
    if let Some(load) = ops {
        config.ops_addr = Some("127.0.0.1:0".into());
        config.audit_every = load.audit_every;
    }
    let daemon =
        Matchd::start("127.0.0.1:0", universe, config, registry.clone()).expect("start");
    let addr = daemon.local_addr();
    // Outside the measured window: both modes pause identically, long
    // enough for the first audit cycle to land with ops on (the one-off
    // universe derivation that seeds the auditor's structure cache).
    std::thread::sleep(warmup);

    let hist = registry.histogram("matchd_submit_wall_us");
    let stop_scraper = AtomicBool::new(false);
    let (wall_ms, acked, scrapes) = std::thread::scope(|s| {
        let scraper = daemon.ops_addr().map(|ops_addr| {
            let stop = &stop_scraper;
            let every = ops.expect("ops_addr implies a load config").scrape_every;
            s.spawn(move || {
                let mut done = 0u64;
                while !stop.load(Ordering::SeqCst) {
                    let m = scrape(ops_addr, "/metrics").is_some();
                    let st = scrape(ops_addr, "/status")
                        .and_then(|b| OpsStatus::parse(&b).ok())
                        .is_some();
                    let r = scrape(ops_addr, "/readyz").is_some();
                    if m && st && r {
                        done += 1;
                    }
                    std::thread::sleep(every);
                }
                done
            })
        });
        let t0 = Instant::now();
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let hist = &hist;
                s.spawn(move || {
                    let stream = client_stream(universe, c, CLIENTS, events_per_client);
                    let mut conn = MatchdClient::connect(addr).expect("connect");
                    let mut acked = 0u64;
                    for chunk in stream.chunks(CHUNK) {
                        loop {
                            let sent = Instant::now();
                            match conn.submit(chunk).expect("submit") {
                                SubmitOutcome::Accepted { .. } => {
                                    hist.observe(sent.elapsed().as_micros() as u64);
                                    acked += chunk.len() as u64;
                                    break;
                                }
                                SubmitOutcome::Busy { retry_after_ms } => std::thread::sleep(
                                    Duration::from_millis(retry_after_ms as u64),
                                ),
                                SubmitOutcome::Rejected { error } => {
                                    panic!("client {c} rejected: {error}")
                                }
                            }
                        }
                    }
                    acked
                })
            })
            .collect();
        let acked: u64 = handles.into_iter().map(|h| h.join().expect("client")).sum();
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        stop_scraper.store(true, Ordering::SeqCst);
        let scrapes = scraper.map(|h| h.join().expect("scraper")).unwrap_or(0);
        (wall_ms, acked, scrapes)
    });
    let stats = daemon.shutdown();
    stats.certify.expect("graceful shutdown state certifies");
    let _ = std::fs::remove_dir_all(&dir);
    (wall_ms, acked, registry, scrapes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_reports_consistent_numbers() {
        let tables = run(true);
        assert_eq!(tables.len(), 2);
        let (overhead, spans) = (&tables[0], &tables[1]);
        assert_eq!(
            overhead.row_count(),
            3,
            "quick sweeps lingers 0 and 2000 plus the pooled -1 contract row"
        );
        for r in 0..overhead.row_count() {
            let linger: i64 = overhead.cell(r, 0).parse().unwrap();
            let events: u64 = overhead.cell(r, 1).parse().unwrap();
            let off_ms: f64 = overhead.cell(r, 2).parse().unwrap();
            let on_ms: f64 = overhead.cell(r, 3).parse().unwrap();
            let pct: f64 = overhead.cell(r, 6).parse().unwrap();
            let passes: u64 = overhead.cell(r, 7).parse().unwrap();
            let scrapes: u64 = overhead.cell(r, 8).parse().unwrap();
            // 4 clients × (2000/5 = 400 events) — every event acked, in
            // both modes (the table records the ops-on ack count); the
            // pooled row sums both linger settings.
            assert_eq!(events, if linger == -1 { 3200 } else { 1600 });
            assert!(off_ms > 0.0 && on_ms > 0.0);
            assert!(pct.is_finite(), "overhead must be a real ratio");
            // The ops plane actually ran: the auditor completed at least
            // one rendezvous or the scraper at least one full round.
            assert!(passes > 0 || scrapes > 0, "ops plane saw no traffic");
            let _ = scrapes;
        }
        let last = overhead.row_count() - 1;
        assert_eq!(overhead.cell(last, 0), "-1", "contract row is last");
        assert_eq!(spans.row_count(), 3, "queue / apply / ack legs");
        let n: u64 = spans.cell(0, 1).parse().unwrap();
        assert!(n > 0, "owner must observe SUBMIT spans with ops on");
        for r in 0..3 {
            let p50: f64 = spans.cell(r, 3).parse().unwrap();
            let p99: f64 = spans.cell(r, 5).parse().unwrap();
            assert!(p50 >= 0.0 && p99 >= p50, "quantiles out of order");
        }
    }
}
