//! E14 / Table 9 — individual satisfaction distribution (paper future work:
//! "variations that can give minimum satisfaction guarantees individually
//! to each collaborating peer").
//!
//! Theorem 3 bounds the *total*; this experiment shows what individuals
//! get: the per-node satisfaction distribution (min, p10, median, starved
//! fraction) under LID and the baselines. LID's weight normalization keeps
//! the tail noticeably fatter than weight-blind pairing, but no algorithm
//! protects every individual — quantifying the open problem.

use crate::{mean, Table};
use owp_core::run_lid;
use owp_matching::baselines::{random_maximal, rank_greedy};
use owp_matching::{BMatching, MatchingReport, Problem};
use owp_simnet::SimConfig;
use rayon::prelude::*;

type AlgFn = Box<dyn Fn(&Problem, u64) -> BMatching + Sync>;

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Runs the distribution comparison.
pub fn run(quick: bool) -> Table {
    let seeds: u64 = if quick { 3 } else { 20 };
    let n = if quick { 96 } else { 256 };

    let mut t = Table::new(
        format!("E14 / Table 9 — per-node satisfaction distribution (gnp n={n}, b=3)"),
        &["algorithm", "min", "p10", "median", "mean", "starved %"],
    );

    let algs: Vec<(&str, AlgFn)> = vec![
        (
            "LID (this paper)",
            Box::new(|p: &Problem, seed: u64| {
                let r = run_lid(p, SimConfig::with_seed(seed));
                assert!(r.terminated);
                r.matching
            }),
        ),
        (
            "rank greedy",
            Box::new(|p: &Problem, _| rank_greedy(p)),
        ),
        (
            "random maximal",
            Box::new(|p: &Problem, seed| random_maximal(p, seed)),
        ),
    ];

    for (name, alg) in &algs {
        let rows: Vec<(f64, f64, f64, f64, f64)> = (0..seeds)
            .into_par_iter()
            .map(|seed| {
                let p = Problem::random_gnp(n, 10.0 / (n as f64 - 1.0), 3, 1500 + seed);
                let m = alg(&p, seed);
                let r = MatchingReport::compute(&p, &m);
                let mut per = r.per_node.clone();
                per.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
                let starved = per.iter().filter(|&&s| s < 1e-12).count() as f64
                    / per.len().max(1) as f64;
                (
                    percentile(&per, 0.0),
                    percentile(&per, 0.1),
                    percentile(&per, 0.5),
                    r.satisfaction_mean,
                    starved,
                )
            })
            .collect();
        let col = |k: usize| -> Vec<f64> {
            rows.iter()
                .map(|r| match k {
                    0 => r.0,
                    1 => r.1,
                    2 => r.2,
                    3 => r.3,
                    _ => r.4,
                })
                .collect()
        };
        t.row(vec![
            name.to_string(),
            format!("{:.3}", mean(&col(0))),
            format!("{:.3}", mean(&col(1))),
            format!("{:.3}", mean(&col(2))),
            format!("{:.3}", mean(&col(3))),
            format!("{:.1}", 100.0 * mean(&col(4))),
        ]);
    }
    t.note("no algorithm gives an individual floor (open problem per the paper's conclusion); LID's tail dominates the weight-blind baselines");
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_run_lid_mean_dominates_random() {
        let t = super::run(true);
        assert_eq!(t.row_count(), 3);
        let lid_mean: f64 = t.cell(0, 4).parse().unwrap();
        let rnd_mean: f64 = t.cell(2, 4).parse().unwrap();
        assert!(lid_mean > rnd_mean, "LID should beat random pairing on mean");
    }
}
