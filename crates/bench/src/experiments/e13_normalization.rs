//! E13 / Table 8 — ablation of eq. 9's quota normalization.
//!
//! Eq. 9 divides each endpoint's contribution by its quota `b_i`, so a
//! connection is worth more to a node that can only afford a few. This
//! experiment removes the division (`w' = (1−R/L) + (1−R/L)`) and measures
//! the total-satisfaction cost on instances with *heterogeneous* quotas.
//! (With uniform quotas the two orders coincide, which the harness also
//! verifies as a sanity row.)

use crate::{mean, Table};
use owp_graph::{PreferenceTable, Quotas};
use owp_matching::lic::{lic, SelectionPolicy};
use owp_matching::weights::EdgeWeights;
use owp_matching::Problem;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

/// Runs the ablation.
pub fn run(quick: bool) -> Table {
    let seeds: u64 = if quick { 5 } else { 30 };
    let n = if quick { 64 } else { 200 };

    let mut t = Table::new(
        format!("E13 / Table 8 — eq. 9 quota-normalization ablation (gnp n={n})"),
        &["quotas", "S (eq. 9)", "S (unnormalized)", "eq. 9 wins %", "identical %"],
    );

    for quota_kind in ["uniform b=3", "random 1..=6"] {
        let rows: Vec<(f64, f64, bool, bool)> = (0..seeds)
            .into_par_iter()
            .map(|seed| {
                let mut rng = StdRng::seed_from_u64(seed * 17 + 3);
                // The uniform sanity row needs *truly* uniform quotas, so its
                // graph is regular (uniform quotas clamp to degree otherwise).
                let g = match quota_kind {
                    "uniform b=3" => owp_graph::generators::random_regular(n, 10, &mut rng),
                    _ => owp_graph::generators::erdos_renyi(n, 10.0 / (n as f64 - 1.0), &mut rng),
                };
                let prefs = PreferenceTable::random(&g, &mut rng);
                let quotas = match quota_kind {
                    "uniform b=3" => Quotas::uniform(&g, 3),
                    _ => Quotas::random_range(&g, 1, 6, &mut rng),
                };
                let w_ablate = EdgeWeights::compute_unnormalized(&g, &prefs, &quotas);
                let p_eq9 = Problem::new(g.clone(), prefs.clone(), quotas.clone());
                let p_abl = Problem::with_weights(g, prefs, quotas, w_ablate);

                let m_eq9 = lic(&p_eq9, SelectionPolicy::InOrder);
                let m_abl = lic(&p_abl, SelectionPolicy::InOrder);
                // Score BOTH matchings with true satisfaction on the same
                // instance (weights differ; the metric does not).
                let s_eq9 = m_eq9.total_satisfaction(&p_eq9);
                let s_abl = m_abl.total_satisfaction(&p_eq9);
                (
                    s_eq9,
                    s_abl,
                    s_eq9 > s_abl + 1e-9,
                    m_eq9.same_edges(&m_abl),
                )
            })
            .collect();
        let s_eq9: Vec<f64> = rows.iter().map(|r| r.0).collect();
        let s_abl: Vec<f64> = rows.iter().map(|r| r.1).collect();
        let wins = rows.iter().filter(|r| r.2).count() as f64 / seeds as f64;
        let same = rows.iter().filter(|r| r.3).count() as f64 / seeds as f64;
        if quota_kind == "uniform b=3" {
            assert_eq!(same, 1.0, "uniform quotas: orders must coincide");
        }
        t.row(vec![
            quota_kind.to_string(),
            format!("{:.2}", mean(&s_eq9)),
            format!("{:.2}", mean(&s_abl)),
            format!("{:.0}", wins * 100.0),
            format!("{:.0}", same * 100.0),
        ]);
    }
    t.note("uniform quotas: identical matching (the 1/b factor is a global scale). Heterogeneous quotas: the matchings differ; unnormalized weights can edge ahead on raw eq. 1 satisfaction (they overfill high-quota nodes, boosting the dynamic term), while eq. 9 is the weighting Lemma 2 ties to the modified objective — i.e. the one with the proven ¼(1+1/b) guarantee");
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_run_uniform_row_identical() {
        let t = super::run(true);
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.cell(0, 4), "100");
    }
}
