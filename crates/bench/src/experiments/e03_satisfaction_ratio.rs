//! E3 / Table 2 — true total satisfaction achieved by the distributed LID
//! against the exact satisfaction optimum, compared with Theorem 3's
//! `¼(1 + 1/b_max)` guarantee.

use crate::{mean, min, std_dev, Table};
use owp_core::run_lid;
use owp_matching::bounds::overall_bound;
use owp_matching::exact::{optimal_satisfaction, DEFAULT_BUDGET};
use owp_matching::Problem;
use owp_simnet::SimConfig;
use rayon::prelude::*;

/// Runs the sweep. `quick` trims seeds for CI.
pub fn run(quick: bool) -> Table {
    let seeds: u64 = if quick { 3 } else { 25 };
    let mut t = Table::new(
        "E3 / Table 2 — LID satisfaction vs exact OPT (Theorem 3: ratio ≥ ¼(1+1/b_max))",
        &["instance", "b", "bound", "ratio mean±std", "ratio min"],
    );

    for (label, n, p_edge) in [("gnp(11,0.5)", 11usize, 0.5), ("gnp(10,0.8)", 10, 0.8)] {
        for b in [1u32, 2, 3] {
            let ratios: Vec<f64> = (0..seeds)
                .into_par_iter()
                .filter_map(|seed| {
                    let p = Problem::random_gnp(n, p_edge, b, 1000 + seed);
                    if p.edge_count() == 0 || p.bmax() == 0 {
                        return None;
                    }
                    let lid = run_lid(&p, SimConfig::with_seed(seed));
                    assert!(lid.terminated);
                    let achieved = lid.matching.total_satisfaction(&p);
                    let opt = optimal_satisfaction(&p, DEFAULT_BUDGET)
                        .matching
                        .total_satisfaction(&p);
                    if opt <= 0.0 {
                        return None;
                    }
                    Some(achieved / opt)
                })
                .collect();
            if ratios.is_empty() {
                continue;
            }
            let bound = overall_bound(b);
            let worst = min(&ratios);
            assert!(
                worst >= bound - 1e-9,
                "Theorem 3 violated: {worst} < {bound} on {label} b={b}"
            );
            t.row(vec![
                label.to_string(),
                b.to_string(),
                format!("{bound:.4}"),
                format!("{:.4}±{:.4}", mean(&ratios), std_dev(&ratios)),
                format!("{worst:.4}"),
            ]);
        }
    }
    t.note("LID's measured satisfaction sits far above the proven ¼(1+1/b_max) floor");
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_run() {
        let t = super::run(true);
        assert!(t.row_count() >= 4);
    }
}
