//! One module per experiment; each returns a [`crate::Table`] so the
//! binary stays thin and the harness is unit-testable.
//!
//! The `quick` flag shrinks sweeps/seed counts to keep CI fast; the numbers
//! in `EXPERIMENTS.md` come from full (`quick = false`) runs.

pub mod e01_figure1;
pub mod e02_weight_ratio;
pub mod e03_satisfaction_ratio;
pub mod e04_messages;
pub mod e05_convergence;
pub mod e06_baselines;
pub mod e07_bmax_sweep;
pub mod e08_lemma1_tightness;
pub mod e09_churn;
pub mod e10_equivalence;
pub mod e11_robustness;
pub mod e12_reliable;
pub mod e13_normalization;
pub mod e14_fairness;
pub mod e15_scale;
pub mod e16_stability;
pub mod e17_ratio_at_scale;
pub mod e18_convergence_trace;
pub mod e19_dynamic;
pub mod e20_critical_path;
pub mod e21_sharded;
pub mod e22_forensics;
pub mod e23_matchd;
pub mod e24_ops;
pub mod e25_campaign;

use crate::Table;
use owp_metrics::MetricsRegistry;
use owp_telemetry::{ConvergenceSeries, EventLog};

/// All experiment ids, in order.
pub const ALL: &[&str] = &[
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15", "e16", "e17", "e18", "e19", "e20", "e21", "e22", "e23", "e24", "e25",
];

/// The experiments that record a raw trace artifact — i.e. that honor
/// `--trace-out`. `e18` writes a per-round [`ConvergenceSeries`]; `e20`
/// writes the span-annotated telemetry [`EventLog`] (the input format of
/// `owp-inspect causal`). Everything else ignores the flag (the binary
/// warns per experiment).
pub const TRACED: &[&str] = &["e18", "e20"];

/// The experiments with a metrics-instrumented variant — i.e. that
/// populate a [`MetricsRegistry`] under `--metrics-out`/`--watch`. The
/// rest run un-instrumented even when a registry is supplied.
pub const INSTRUMENTED: &[&str] = &["e5", "e18", "e19", "e20", "e21", "e23", "e25"];

/// The experiments that capture a [`owp_engine::ForensicBundle`] — i.e.
/// that honor `--forensics-out`. `e22` surfaces the first post-mortem
/// bundle its injected-corruption sweep produced (the input format of
/// `owp-inspect forensics`).
pub const FORENSIC: &[&str] = &["e22"];

/// The experiments that run a chaos campaign and carry an attested
/// [`crate::campaign::CampaignReport`] — i.e. that honor
/// `--campaign-out`. `e25` writes the canonical report JSON (the input
/// format of `owp-inspect campaign`).
pub const CAMPAIGN: &[&str] = &["e25"];

/// The raw artifact a traced experiment attaches to its tables; what
/// `--trace-out` serializes (each variant has its own JSONL schema).
pub enum TraceArtifact {
    /// Per-round convergence samples (`owp_telemetry::series` schema).
    Series(ConvergenceSeries),
    /// Structured telemetry events with causal span records
    /// (`owp_telemetry::event` schema; input of `owp-inspect causal`).
    Events(EventLog),
}

impl TraceArtifact {
    /// Number of JSONL rows the artifact serializes to.
    pub fn len(&self) -> usize {
        match self {
            TraceArtifact::Series(s) => s.len(),
            TraceArtifact::Events(l) => l.len(),
        }
    }

    /// `true` iff the artifact has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The artifact in its JSONL serialization.
    pub fn to_jsonl(&self) -> String {
        match self {
            TraceArtifact::Series(s) => s.to_jsonl(),
            TraceArtifact::Events(l) => l.to_jsonl(),
        }
    }
}

/// Dispatches an experiment by id. Returns the tables it produced.
pub fn run(id: &str, quick: bool) -> Option<Vec<Table>> {
    run_with_trace(id, quick).map(|(tables, _)| tables)
}

/// Like [`run`], but also returns the raw [`TraceArtifact`] for
/// experiments that record one (see [`TRACED`]) so the binary can honor
/// `--trace-out` without running the experiment twice.
pub fn run_with_trace(id: &str, quick: bool) -> Option<(Vec<Table>, Option<TraceArtifact>)> {
    run_instrumented(id, quick, None)
}

/// Full dispatch: like [`run_with_trace`], and when a registry is supplied
/// the experiments listed in [`INSTRUMENTED`] run their metrics variant
/// (registry histograms/counters + online audit) instead of the plain one.
/// Tables are identical either way.
pub fn run_instrumented(
    id: &str,
    quick: bool,
    metrics: Option<&MetricsRegistry>,
) -> Option<(Vec<Table>, Option<TraceArtifact>)> {
    if id == "e18" {
        let (table, series) = match metrics {
            Some(reg) => e18_convergence_trace::run_with_series_metrics(quick, reg),
            None => e18_convergence_trace::run_with_series(quick),
        };
        return Some((vec![table], Some(TraceArtifact::Series(series))));
    }
    if id == "e20" {
        let (tables, log) = match metrics {
            Some(reg) => e20_critical_path::run_with_metrics(quick, reg),
            None => e20_critical_path::run_with_log(quick),
        };
        return Some((tables, Some(TraceArtifact::Events(log))));
    }
    if let Some(reg) = metrics {
        match id {
            "e5" => return Some((vec![e05_convergence::run_with_metrics(quick, reg)], None)),
            "e19" => return Some((e19_dynamic::run_with_metrics(quick, reg), None)),
            "e21" => return Some((e21_sharded::run_with_metrics(quick, reg), None)),
            "e23" => return Some((e23_matchd::run_with_metrics(quick, reg), None)),
            "e25" => return Some((e25_campaign::run_with_metrics(quick, reg), None)),
            _ => {}
        }
    }
    let tables = match id {
        "e1" => vec![e01_figure1::run()],
        "e2" => vec![e02_weight_ratio::run(quick)],
        "e3" => vec![e03_satisfaction_ratio::run(quick)],
        "e4" => vec![e04_messages::run(quick)],
        "e5" => vec![e05_convergence::run(quick)],
        "e6" => e06_baselines::run(quick),
        "e7" => vec![e07_bmax_sweep::run(quick)],
        "e8" => vec![e08_lemma1_tightness::run()],
        "e9" => vec![e09_churn::run(quick)],
        "e10" => vec![e10_equivalence::run(quick)],
        "e11" => vec![e11_robustness::run(quick)],
        "e12" => vec![e12_reliable::run(quick)],
        "e13" => vec![e13_normalization::run(quick)],
        "e14" => vec![e14_fairness::run(quick)],
        "e15" => e15_scale::run(quick),
        "e16" => e16_stability::run(quick),
        "e17" => vec![e17_ratio_at_scale::run(quick)],
        "e19" => e19_dynamic::run(quick),
        "e21" => e21_sharded::run(quick),
        "e22" => e22_forensics::run(quick),
        "e23" => e23_matchd::run(quick),
        "e24" => e24_ops::run(quick),
        "e25" => e25_campaign::run(quick),
        _ => return None,
    };
    Some((tables, None))
}

/// Like [`run`], but for experiments in [`FORENSIC`] also returns the
/// captured post-mortem bundle so the binary can honor `--forensics-out`
/// without running the sweep twice. Non-forensic ids return `None` for
/// the bundle.
pub fn run_with_forensics(
    id: &str,
    quick: bool,
) -> Option<(Vec<Table>, Option<owp_engine::ForensicBundle>)> {
    if id == "e22" {
        let (tables, bundle) = e22_forensics::run_with_bundle(quick);
        return Some((tables, bundle));
    }
    run(id, quick).map(|tables| (tables, None))
}

/// Like [`run_instrumented`], but for experiments in [`CAMPAIGN`] also
/// returns the attested campaign report so the binary can honor
/// `--campaign-out` without running the campaign twice (campaign capture
/// composes with metrics: a supplied registry gets the `campaign_*`
/// ledger either way). Other ids return `None` for the report.
pub fn run_with_campaign(
    id: &str,
    quick: bool,
    metrics: Option<&MetricsRegistry>,
) -> Option<(Vec<Table>, Option<crate::campaign::CampaignReport>)> {
    if id == "e25" {
        let (tables, report) = e25_campaign::run_full(quick, metrics);
        return Some((tables, Some(report)));
    }
    run_instrumented(id, quick, metrics).map(|(tables, _)| (tables, None))
}

/// Serializes an experiment's tables as the `BENCH_<id>.json` document:
/// `{"experiment", "quick", "elapsed_ms", "tables": [...]}`. Hand-rolled —
/// the schema is four keys and [`Table::to_json`] does the heavy lifting.
pub fn tables_to_json(id: &str, quick: bool, elapsed: std::time::Duration, tables: &[Table]) -> String {
    let mut out = String::new();
    out.push_str("{\"experiment\":\"");
    out.push_str(id);
    out.push_str("\",\"quick\":");
    out.push_str(if quick { "true" } else { "false" });
    out.push_str(",\"elapsed_ms\":");
    out.push_str(&format!("{:.1}", elapsed.as_secs_f64() * 1e3));
    out.push_str(",\"tables\":[");
    for (i, t) in tables.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&t.to_json());
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dispatch sanity on a few cheap experiments (each experiment module
    /// carries its own full quick test; re-running all 17 here would double
    /// the suite's cost for no extra coverage).
    #[test]
    fn dispatch_produces_tables() {
        for id in ["e1", "e8", "e10"] {
            let tables = run(id, true).unwrap_or_else(|| panic!("unknown id {id}"));
            assert!(!tables.is_empty(), "{id} produced no tables");
            for t in &tables {
                assert!(t.row_count() > 0, "{id} produced an empty table");
                // Render must not panic.
                let _ = t.render();
            }
        }
    }

    /// Every id in ALL dispatches and ids are unique.
    #[test]
    fn all_ids_are_known_and_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for id in ALL {
            assert!(seen.insert(*id), "duplicate id {id}");
        }
        assert_eq!(ALL.len(), 25);
    }

    /// E18 carries a convergence series, E20 a raw event log; the others
    /// return `None` for the trace artifact.
    #[test]
    fn trace_is_attached_exactly_where_expected() {
        let (tables, artifact) = run_with_trace("e18", true).expect("e18 runs");
        let artifact = artifact.expect("e18 records a trace");
        assert!(matches!(artifact, TraceArtifact::Series(_)));
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].row_count(), artifact.len());
        assert!(!artifact.is_empty());
        assert!(artifact.to_jsonl().lines().count() == artifact.len());
        let (_, none) = run_with_trace("e1", true).expect("e1 runs");
        assert!(none.is_none(), "e1 has no trace artifact");
    }

    /// The E20 artifact is a telemetry event log whose JSONL round-trips
    /// into a certified causal DAG (the `owp-inspect causal` input path).
    #[test]
    fn e20_trace_artifact_is_a_causal_event_log() {
        let (_, artifact) = run_with_trace("e20", true).expect("e20 runs");
        let artifact = artifact.expect("e20 records a trace");
        assert!(matches!(artifact, TraceArtifact::Events(_)));
        let log = owp_telemetry::EventLog::parse_jsonl(&artifact.to_jsonl()).expect("parses");
        let dag = owp_telemetry::CausalDag::from_log(&log);
        assert!(!dag.is_empty());
        assert!(dag.is_certified());
    }

    #[test]
    fn unknown_id_is_none() {
        assert!(run("e99", true).is_none());
        assert!(run_instrumented("e99", true, Some(&owp_metrics::MetricsRegistry::new())).is_none());
    }

    /// TRACED/INSTRUMENTED are subsets of ALL (a typo'd id there would make
    /// the binary's warnings lie).
    #[test]
    fn capability_lists_are_consistent() {
        for id in TRACED.iter().chain(INSTRUMENTED).chain(FORENSIC).chain(CAMPAIGN) {
            assert!(ALL.contains(id), "{id} not in ALL");
        }
        assert!(TRACED.iter().all(|id| INSTRUMENTED.contains(id)),
            "traced experiments must also have a metrics variant");
    }

    #[test]
    fn json_document_has_the_expected_shape() {
        let tables = run("e1", true).expect("e1 runs");
        let doc = tables_to_json("e1", true, std::time::Duration::from_millis(12), &tables);
        assert!(doc.starts_with("{\"experiment\":\"e1\",\"quick\":true,\"elapsed_ms\":12.0,"));
        assert!(doc.contains("\"tables\":[{\"title\":"));
        assert!(doc.ends_with("]}\n"));
    }
}
