//! E11 / Table 6 — beyond the paper's model: asynchrony and unreliability.
//!
//! Latency distributions only reorder events — the result is invariant
//! (Theorem 3's premise). Message *loss* breaks the reliable-channel
//! assumption: nodes can wait forever on dropped replies and locks can go
//! asymmetric. The table quantifies the degradation.

use crate::{mean, Table};
use owp_core::run_lid;
use owp_matching::lic::{lic, SelectionPolicy};
use owp_matching::Problem;
use owp_simnet::{FaultPlan, LatencyModel, SimConfig};
use rayon::prelude::*;

/// Runs the latency × loss sweep on G(128, avg degree 10), b = 3.
pub fn run(quick: bool) -> Table {
    let seeds: u64 = if quick { 3 } else { 20 };
    let n = if quick { 64 } else { 128 };

    let mut t = Table::new(
        format!("E11 / Table 6 — robustness on gnp(n={n}), b=3"),
        &[
            "latency",
            "loss %",
            "terminated %",
            "≡ LIC %",
            "asym locks",
            "msgs/node",
        ],
    );

    let latencies: [(&str, LatencyModel); 3] = [
        ("const 1", LatencyModel::unit()),
        ("uniform 1-100", LatencyModel::Uniform { lo: 1, hi: 100 }),
        ("exp mean 20", LatencyModel::Exponential { mean: 20.0 }),
    ];

    for (lname, latency) in latencies {
        for loss in [0.0f64, 0.02, 0.10] {
            let rows: Vec<(bool, bool, f64, f64)> = (0..seeds)
                .into_par_iter()
                .map(|seed| {
                    let p = Problem::random_gnp(n, 10.0 / (n as f64 - 1.0), 3, 700 + seed);
                    let reference = lic(&p, SelectionPolicy::InOrder);
                    let cfg = SimConfig::with_seed(seed)
                        .latency(latency.clone())
                        .faults(FaultPlan::with_drop_probability(loss));
                    let r = run_lid(&p, cfg);
                    (
                        r.terminated,
                        r.matching.same_edges(&reference),
                        r.asymmetric_locks as f64,
                        r.stats.sent as f64 / n as f64,
                    )
                })
                .collect();
            let term = rows.iter().filter(|r| r.0).count() as f64 / seeds as f64;
            let same = rows.iter().filter(|r| r.1).count() as f64 / seeds as f64;
            let asym: Vec<f64> = rows.iter().map(|r| r.2).collect();
            let msgs: Vec<f64> = rows.iter().map(|r| r.3).collect();
            if loss == 0.0 {
                assert_eq!(term, 1.0, "no-loss runs must terminate");
                assert_eq!(same, 1.0, "no-loss runs must equal LIC");
            }
            t.row(vec![
                lname.to_string(),
                format!("{:.0}", loss * 100.0),
                format!("{:.0}", term * 100.0),
                format!("{:.0}", same * 100.0),
                format!("{:.2}", mean(&asym)),
                format!("{:.1}", mean(&msgs)),
            ]);
        }
    }
    t.note("loss 0%: result invariant under any latency (asynchrony is harmless); loss > 0%: the reliable-channel assumption is load-bearing — retransmission would be needed");
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_run_no_loss_rows_are_perfect() {
        let t = super::run(true);
        assert_eq!(t.row_count(), 9);
        for r in [0usize, 3, 6] {
            assert_eq!(t.cell(r, 2), "100");
            assert_eq!(t.cell(r, 3), "100");
        }
    }
}
