//! E25 — chaos campaign: seeded fault-plan sweeps with a per-fault-class
//! coverage ledger and an attested report.
//!
//! The campaign (see [`crate::campaign`]) runs reliable LID and the
//! dynamic engine through hundreds of composed fault plans — healing
//! partitions, asymmetric loss, duplication, FIFO-violating reordering,
//! crash-restart — and checks every certificate the repo owns after each
//! plan. One plan is poisoned with a `PhantomEdge` engine fault: the
//! canary proving the campaign detects corruption, not just absence of
//! crashes.
//!
//! Tables:
//!
//! 1. **Coverage ledger** (headline, `bench_guard` schema, exact-guarded):
//!    generated / executed / certified / violated per fault class. These
//!    are deterministic counts — any drift against `BENCH_e25.json` means
//!    the generator, the protocols or a certificate changed semantics.
//! 2. **Attestation** (textual): plan totals, the injected/genuine
//!    violation split, total simulator events, the report digest and the
//!    campaign verdict.
//! 3. **Violations** (textual): one row per violation record with its
//!    reproducer coordinates (`seed` + plan id) and first reason.
//!
//! With `--campaign-out <path>` the full attested report is written as
//! canonical JSON (the input of `owp-inspect campaign`).

use crate::campaign::{run_campaign_with_metrics, CampaignConfig, CampaignReport};
use crate::Table;
use owp_metrics::MetricsRegistry;

/// The fixed campaign seed of the experiment (reports are reproducible
/// from `EXPERIMENTS.md` alone).
pub const E25_SEED: u64 = 0xE25;

/// The campaign config E25 runs: 1000 plans over eight 24-node instances
/// (60 plans over four 16-node instances under `quick`), canary at the
/// midpoint.
pub fn config(quick: bool) -> CampaignConfig {
    if quick {
        CampaignConfig {
            seed: E25_SEED,
            plans: 60,
            n: 16,
            instances: 4,
            quota: 2,
            inject_at: Some(30),
        }
    } else {
        CampaignConfig {
            seed: E25_SEED,
            plans: 1000,
            n: 24,
            instances: 8,
            quota: 3,
            inject_at: Some(500),
        }
    }
}

/// Runs E25. The first table is the exact-guarded coverage ledger.
pub fn run(quick: bool) -> Vec<Table> {
    run_with_report(quick).0
}

/// [`run`], also surfacing the attested report so the binary can honor
/// `--campaign-out` without running the campaign twice.
pub fn run_with_report(quick: bool) -> (Vec<Table>, CampaignReport) {
    run_full(quick, None)
}

/// The metrics-instrumented variant: identical tables, and the registry
/// additionally carries the `campaign_*` ledger (per-class plan and
/// violation counters, wall-time and event-count histograms).
pub fn run_with_metrics(quick: bool, reg: &MetricsRegistry) -> Vec<Table> {
    run_full(quick, Some(reg)).0
}

/// Full variant: optional instrumentation plus the attested report.
pub fn run_full(quick: bool, reg: Option<&MetricsRegistry>) -> (Vec<Table>, CampaignReport) {
    let report = run_campaign_with_metrics(&config(quick), reg);
    (tables(&report), report)
}

fn tables(report: &CampaignReport) -> Vec<Table> {
    let c = &report.config;

    let mut cov = Table::new(
        format!(
            "E25 — chaos campaign coverage ledger: {} plans, seed {:#x}, \
             gnp(n={}, p=0.3, b={}) x {} instances, canary at plan {}",
            c.plans,
            c.seed,
            c.n,
            c.quota,
            c.instances,
            c.inject_at.map(|id| id.to_string()).unwrap_or_else(|| "-".into()),
        ),
        &["class", "label", "generated", "executed", "certified", "violated"],
    );
    for row in &report.coverage {
        cov.row(vec![
            row.class.index().to_string(),
            row.class.label().to_string(),
            row.generated.to_string(),
            row.executed.to_string(),
            row.certified.to_string(),
            row.violated.to_string(),
        ]);
    }
    cov.note(
        "deterministic counts (bench_guard checks them exactly); the violated \
         column counts the intentional PhantomEdge canary",
    );

    let injected = report.violations.iter().filter(|v| v.injected).count();
    let genuine = report.violations.len() - injected;
    let mut att = Table::new(
        "E25 — campaign attestation".to_string(),
        &["plans", "violations", "injected", "genuine", "events", "digest", "verdict"],
    );
    att.row(vec![
        c.plans.to_string(),
        report.violations.len().to_string(),
        injected.to_string(),
        genuine.to_string(),
        report.total_events.to_string(),
        report.digest.clone(),
        if report.clean() { "clean".into() } else { "VIOLATED".into() },
    ]);
    att.note(
        "clean = every violation is the injected canary and the canary was \
         detected; the digest attests the canonical report bytes (FNV-1a-64)",
    );

    let mut vio = Table::new(
        format!("E25 — violation records (reproduce: seed {:#x} + plan id)", c.seed),
        &["plan", "class", "injected", "reasons", "first reason"],
    );
    if report.violations.is_empty() {
        vio.row(vec!["-".into(), "-".into(), "-".into(), "0".into(), "(none)".into()]);
    }
    for v in &report.violations {
        let first = v.reasons.first().map(String::as_str).unwrap_or("(none)");
        let first = if first.len() > 72 { &first[..72] } else { first };
        vio.row(vec![
            v.plan.to_string(),
            v.class.label().to_string(),
            v.injected.to_string(),
            v.reasons.len().to_string(),
            first.to_string(),
        ]);
    }
    vio.note("owp-inspect campaign <report> --replay <plan> re-executes a record");

    vec![cov, att, vio]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::FaultClass;

    #[test]
    fn quick_campaign_covers_every_class_and_stays_clean() {
        let (tables, report) = run_with_report(true);
        assert_eq!(tables.len(), 3);

        let cov = &tables[0];
        assert_eq!(cov.row_count(), 5);
        for r in 0..cov.row_count() {
            assert_eq!(cov.cell(r, 0), r.to_string(), "ledger is in class order");
            let generated: u64 = cov.cell(r, 2).parse().unwrap();
            let executed: u64 = cov.cell(r, 3).parse().unwrap();
            let certified: u64 = cov.cell(r, 4).parse().unwrap();
            assert_eq!(generated, 12, "60 plans round-robin over 5 classes");
            assert_eq!(executed, generated);
            assert!(certified > 0, "class {r} has no certified plans");
        }

        let att = &tables[1];
        assert_eq!(att.cell(0, 6), "clean");
        assert_eq!(att.cell(0, 3), "0", "no genuine violations");
        assert_eq!(att.cell(0, 2), "1", "exactly the canary");
        assert_eq!(att.cell(0, 5), report.digest);
        assert!(report.clean());
        assert!(report.verify_digest().is_ok());

        // The canary is plan 30 and its record carries a reproducer.
        let canary = report.violations.iter().find(|v| v.injected).expect("canary");
        assert_eq!(canary.plan, 30);
        assert_eq!(canary.class, FaultClass::of_plan(30));
        assert!(!canary.plan_json.is_empty());
    }

    #[test]
    fn metrics_variant_populates_the_campaign_ledger() {
        let reg = MetricsRegistry::new();
        let tables = run_with_metrics(true, &reg);
        assert_eq!(tables.len(), 3);
        let json = reg.snapshot().to_json();
        assert!(json.contains("campaign_plans_total"));
        assert!(json.contains("campaign_plans_crash_restart"));
        assert!(json.contains("campaign_plan_wall_us"));
    }
}
