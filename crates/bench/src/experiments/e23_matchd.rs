//! E23 — matchd ingest: end-to-end throughput and latency of the durable
//! matchmaking daemon over real loopback TCP, plus the durability proof.
//!
//! An in-process [`owp_matchd::Matchd`] serves `127.0.0.1:0`; 4 client
//! threads each own a disjoint node partition (so any batching
//! interleaving is valid, see `owp_matchd::client_stream`) and submit
//! 16-event chunks over their own connections, blocking on the
//! apply→WAL→ack path. The sweep moves the **max-linger** knob — the
//! adaptive batcher's latency/throughput trade — and reports:
//!
//! * **events/s** — acknowledged events over client wall time;
//! * **p99 ms** — tail of the per-submission round-trip (TCP write →
//!   apply → WAL append → ack read), from a log₂ histogram's
//!   `quantile_upper_bound`;
//! * **batches** — owner-side flushes (fewer = more merging);
//! * **busy** — admission-control rejections clients retried through.
//!
//! The second table is the durability cut: for each linger setting, a
//! *separate* daemon is killed via [`owp_matchd::Matchd::abort`] (the
//! in-process SIGKILL: no flush, no final snapshot) mid-stream, the data
//! dir is recovered with [`owp_matchd::recover`], and the row records
//! that the recovered epoch equals the last acknowledged epoch and that
//! the recovered engine **certifies** — bit-identity with a from-scratch
//! `lic()`. The CI smoke job repeats the same proof across a real
//! process boundary with `kill -9`.
//!
//! Scale: `--quick` uses n = 2000 with lingers {0, 2000}µs; the full run
//! uses n = 20000 (honors `OWP_E23_N`) with lingers {0, 500, 2000}µs.
//! Fsync policy is `snapshot` in both — `always` measures the disk, not
//! the daemon (E23's subject is the batching pipeline).

use crate::Table;
use owp_matchd::{
    client_stream, from_spec, recover, FsyncPolicy, Matchd, MatchdClient, MatchdConfig,
    SubmitOutcome,
};
use owp_metrics::MetricsRegistry;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Events each client submits per sweep configuration.
const CHUNK: usize = 16;
/// Client threads (= disjoint node-ownership partitions).
const CLIENTS: usize = 4;

/// Runs the ingest sweep + durability table.
pub fn run(quick: bool) -> Vec<Table> {
    run_inner(quick, None)
}

/// [`run`] with metrics: the daemon of the *last* linger configuration
/// publishes its `matchd_*` gauges/counters/histograms into `reg` (fresh
/// local registries isolate every other configuration).
pub fn run_with_metrics(quick: bool, reg: &MetricsRegistry) -> Vec<Table> {
    run_inner(quick, Some(reg))
}

fn scale(quick: bool) -> usize {
    if quick {
        return 2_000;
    }
    std::env::var("OWP_E23_N").ok().and_then(|v| v.parse().ok()).unwrap_or(20_000)
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("owp-e23-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

struct ClientTally {
    acked_events: u64,
    busy_retries: u64,
    last_epoch: u64,
}

/// Drives one client partition over its own connection; every chunk is
/// retried through `BUSY` until acknowledged.
fn drive_client(
    addr: std::net::SocketAddr,
    universe: &owp_matching::Problem,
    client: usize,
    events: usize,
    hist: &owp_metrics::Histogram,
) -> ClientTally {
    let stream = client_stream(universe, client, CLIENTS, events);
    let mut conn = MatchdClient::connect(addr).expect("connect");
    let mut tally = ClientTally { acked_events: 0, busy_retries: 0, last_epoch: 0 };
    for chunk in stream.chunks(CHUNK) {
        loop {
            let t0 = Instant::now();
            match conn.submit(chunk).expect("submit") {
                SubmitOutcome::Accepted { epoch } => {
                    hist.observe(t0.elapsed().as_micros() as u64);
                    tally.acked_events += chunk.len() as u64;
                    tally.last_epoch = epoch;
                    break;
                }
                SubmitOutcome::Busy { retry_after_ms } => {
                    tally.busy_retries += 1;
                    std::thread::sleep(Duration::from_millis(retry_after_ms as u64));
                }
                SubmitOutcome::Rejected { error } => panic!("client {client} rejected: {error}"),
            }
        }
    }
    tally
}

fn run_inner(quick: bool, reg: Option<&MetricsRegistry>) -> Vec<Table> {
    let n = scale(quick);
    let lingers_us: &[u64] = if quick { &[0, 2000] } else { &[0, 500, 2000] };
    let spec = format!("ba:{n},3,2,42");
    let universe = from_spec(&spec).expect("spec");
    let events_per_client = (n / 5).max(200);

    let mut ingest = Table::new(
        format!(
            "E23 — matchd ingest over loopback TCP on {spec}: {CLIENTS} clients × \
             {events_per_client} events in {CHUNK}-event submissions, fsync=snapshot"
        ),
        &["linger us", "clients", "events", "batches", "ingest ms", "events/s", "p99 ms", "busy"],
    );
    let mut durability = Table::new(
        format!(
            "E23 — durability cut: abort (no flush, no final snapshot) mid-stream, \
             recover from WAL + latest snapshot, certify"
        ),
        &["linger us", "acked epoch", "recovered epoch", "replayed", "snapshot epoch", "certified"],
    );

    let last = *lingers_us.last().expect("non-empty sweep");
    for &linger in lingers_us {
        // --- ingest sweep ---------------------------------------------
        let dir = scratch(&format!("ingest-{linger}"));
        // Per-config local registry so latency quantiles and daemon
        // gauges never mix linger settings; the caller's registry (if
        // any) observes the last configuration.
        let local = MetricsRegistry::new();
        let registry = match (reg, linger == last) {
            (Some(r), true) => (*r).clone(),
            _ => local.clone(),
        };
        let hist = registry.histogram("matchd_submit_wall_us");
        let mut config = MatchdConfig::new(&dir);
        config.max_linger = Duration::from_micros(linger);
        config.fsync = FsyncPolicy::OnSnapshot;
        config.snapshot_every = 64;
        let daemon =
            Matchd::start("127.0.0.1:0", &universe, config, registry.clone()).expect("start");
        let addr = daemon.local_addr();

        let t0 = Instant::now();
        let tallies: Vec<ClientTally> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..CLIENTS)
                .map(|c| {
                    let universe = &universe;
                    let hist = &hist;
                    s.spawn(move || drive_client(addr, universe, c, events_per_client, hist))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("client thread")).collect()
        });
        let ingest_ms = t0.elapsed().as_secs_f64() * 1e3;

        let stats = daemon.shutdown();
        stats.certify.expect("graceful shutdown state certifies");
        let acked: u64 = tallies.iter().map(|t| t.acked_events).sum();
        let busy: u64 = tallies.iter().map(|t| t.busy_retries).sum();
        let events_per_s = acked as f64 / (ingest_ms / 1e3).max(f64::MIN_POSITIVE);
        let p99_ms = hist.quantile_upper_bound(0.99).unwrap_or(0) as f64 / 1e3;
        ingest.row(vec![
            linger.to_string(),
            CLIENTS.to_string(),
            acked.to_string(),
            stats.batches.to_string(),
            format!("{ingest_ms:.3}"),
            format!("{events_per_s:.0}"),
            format!("{p99_ms:.3}"),
            busy.to_string(),
        ]);
        let _ = std::fs::remove_dir_all(&dir);

        // --- durability cut -------------------------------------------
        let dir = scratch(&format!("crash-{linger}"));
        let mut config = MatchdConfig::new(&dir);
        config.max_linger = Duration::from_micros(linger);
        config.fsync = FsyncPolicy::OnSnapshot;
        config.snapshot_every = 16;
        let daemon =
            Matchd::start("127.0.0.1:0", &universe, config, MetricsRegistry::new()).expect("start");
        let addr = daemon.local_addr();
        // Half the stream, a single partition-0 client: a mid-flight cut.
        let mut conn = MatchdClient::connect(addr).expect("connect");
        let stream = client_stream(&universe, 0, CLIENTS, events_per_client / 2);
        let mut acked_epoch = 0u64;
        for chunk in stream.chunks(CHUNK) {
            if let SubmitOutcome::Accepted { epoch } =
                conn.submit_with_retry(chunk, 100).expect("submit")
            {
                acked_epoch = epoch;
            }
        }
        let stats = daemon.abort();
        assert!(!stats.graceful, "abort must not be a graceful stop");
        let rec = recover(&dir, &universe, FsyncPolicy::OnSnapshot)
            .expect("recovery must certify before serving");
        durability.row(vec![
            linger.to_string(),
            acked_epoch.to_string(),
            rec.engine.epoch().0.to_string(),
            rec.replayed.to_string(),
            rec.snapshot_epoch.to_string(),
            "yes".into(), // recover() fails outright otherwise
        ]);
        assert_eq!(rec.engine.epoch().0, acked_epoch, "recovery lost acknowledged batches");
        let _ = std::fs::remove_dir_all(&dir);
    }

    ingest.note(format!(
        "p99 is the per-submission round trip observed by clients (TCP write → engine \
         apply → WAL append → ack read), log₂-bucket upper bound; linger 0 flushes \
         every submission, larger lingers merge concurrent clients into fewer batches"
    ));
    ingest.note(format!(
        "busy counts admission-control rejections (bounded {}-submission ingest queue) \
         the clients retried through; acked events always total clients × stream length",
        MatchdConfig::new("unused").queue_capacity
    ));
    durability.note(
        "each row: a separate daemon killed without flush/snapshot after the acked \
         epoch, recovered from disk, replayed past the latest snapshot, and certified \
         bit-identical to a from-scratch lic() — recover() refuses to return otherwise",
    );
    vec![ingest, durability]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_reports_consistent_numbers() {
        let tables = run(true);
        assert_eq!(tables.len(), 2);
        let (ingest, durability) = (&tables[0], &tables[1]);
        assert_eq!(ingest.row_count(), 2, "quick sweeps lingers 0 and 2000");
        for r in 0..ingest.row_count() {
            let events: u64 = ingest.cell(r, 2).parse().unwrap();
            let batches: u64 = ingest.cell(r, 3).parse().unwrap();
            let ingest_ms: f64 = ingest.cell(r, 4).parse().unwrap();
            let evps: f64 = ingest.cell(r, 5).parse().unwrap();
            let p99: f64 = ingest.cell(r, 6).parse().unwrap();
            // 4 clients × (2000/5 = 400 events) — every event acked.
            assert_eq!(events, 1600);
            assert!(batches > 0 && batches <= 400, "batches {batches}");
            assert!(ingest_ms > 0.0 && evps > 0.0 && p99 > 0.0);
        }
        assert_eq!(durability.row_count(), 2);
        for r in 0..durability.row_count() {
            assert_eq!(durability.cell(r, 1), durability.cell(r, 2), "epoch mismatch");
            assert_eq!(durability.cell(r, 5), "yes");
        }
    }

    #[test]
    fn metrics_variant_populates_the_daemon_instruments() {
        let reg = MetricsRegistry::new();
        let tables = run_with_metrics(true, &reg);
        assert_eq!(tables.len(), 2);
        let json = reg.snapshot().to_json();
        for key in [
            owp_metrics::MATCHD_QUEUE_DEPTH,
            owp_metrics::MATCHD_ADMISSION_REJECTS,
            owp_metrics::MATCHD_WAL_BYTES,
            owp_metrics::MATCHD_BATCH_LINGER_US,
        ] {
            assert!(json.contains(key), "{key} missing from {json}");
        }
        assert!(reg.histogram(owp_metrics::MATCHD_BATCH_LINGER_US).count() > 0);
        assert!(reg.histogram("matchd_submit_wall_us").count() > 0);
    }
}
