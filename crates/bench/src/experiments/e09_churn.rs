//! E9 / Figure 5 — churn (the paper's future work): satisfaction before and
//! after a wave of departures, after greedy local repair, and after rejoin,
//! normalized against a full rebuild.

use crate::{mean, Table};
use owp_core::{run_lid, ChurnSim};
use owp_graph::NodeId;
use owp_matching::Problem;
use owp_simnet::SimConfig;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::prelude::*;

/// Runs the churn-fraction sweep on a BA overlay.
pub fn run(quick: bool) -> Table {
    let n = if quick { 128 } else { 512 };
    let seeds: u64 = if quick { 2 } else { 10 };
    let fractions = [0.05f64, 0.10, 0.20, 0.30];

    let mut t = Table::new(
        format!("E9 / Figure 5 — churn recovery on ba(n={n}, m=3), b=4 (values = % of rebuild)"),
        &["churn %", "after leave", "after repair", "after rejoin+repair"],
    );

    for &f in &fractions {
        let rows: Vec<(f64, f64, f64)> = (0..seeds)
            .into_par_iter()
            .map(|seed| {
                let mut rng = StdRng::seed_from_u64(seed * 53 + 11);
                let g = owp_graph::generators::barabasi_albert(n, 3, &mut rng);
                let p = Problem::random_over(g, 4, seed);
                let fresh = run_lid(&p, SimConfig::with_seed(seed));
                assert!(fresh.terminated);
                let rebuild = fresh.matching.total_satisfaction(&p);

                let mut sim = ChurnSim::new(&p, fresh.matching);
                let mut peers: Vec<NodeId> = p.nodes().collect();
                peers.shuffle(&mut rng);
                let leavers: Vec<NodeId> = peers[..(n as f64 * f) as usize].to_vec();
                for &i in &leavers {
                    sim.leave(i);
                }
                // Satisfaction over the full population scale: use the
                // rebuild total as the normalizer throughout.
                let after_leave = sim.active_satisfaction() / rebuild;
                sim.repair();
                let after_repair = sim.active_satisfaction() / rebuild;
                for &i in &leavers {
                    sim.join(i);
                }
                sim.repair();
                let after_rejoin = sim.active_satisfaction() / rebuild;
                (after_leave, after_repair, after_rejoin)
            })
            .collect();
        let a: Vec<f64> = rows.iter().map(|r| r.0).collect();
        let b: Vec<f64> = rows.iter().map(|r| r.1).collect();
        let c: Vec<f64> = rows.iter().map(|r| r.2).collect();
        t.row(vec![
            format!("{:.0}", f * 100.0),
            format!("{:.1}", 100.0 * mean(&a)),
            format!("{:.1}", 100.0 * mean(&b)),
            format!("{:.1}", 100.0 * mean(&c)),
        ]);
    }
    t.note("local repair recovers most of the loss; rejoin+repair returns close to 100% without rebuilding");
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_run_recovery_is_monotone() {
        let t = super::run(true);
        assert_eq!(t.row_count(), 4);
        for r in 0..t.row_count() {
            let leave: f64 = t.cell(r, 1).parse().unwrap();
            let repair: f64 = t.cell(r, 2).parse().unwrap();
            let rejoin: f64 = t.cell(r, 3).parse().unwrap();
            assert!(repair >= leave - 1e-9);
            assert!(rejoin >= repair - 15.0, "rejoin adds peers needing links");
            assert!(rejoin > 80.0, "rejoin+repair should approach rebuild");
        }
    }
}
