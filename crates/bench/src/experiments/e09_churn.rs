//! E9 / Figure 5 — churn (the paper's future work): satisfaction through a
//! wave of departures and rejoins under the engine's continuous certified
//! repair, normalized against a full rebuild.
//!
//! Under the old residual-only repair the rejoin column plateaued below
//! 100%: survivors kept the lighter substitutes they grabbed during the
//! outage. The engine tears invalidated selections down as part of each
//! event, so a full leave/rejoin round-trip is lossless by construction —
//! the interesting columns are now the satisfaction dip while peers are
//! away and how small the per-event dirty region stays.

use crate::{mean, Table};
use owp_core::{run_lid, ChurnSim};
use owp_graph::NodeId;
use owp_matching::Problem;
use owp_simnet::SimConfig;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::prelude::*;

/// Runs the churn-fraction sweep on a BA overlay.
pub fn run(quick: bool) -> Table {
    let n = if quick { 128 } else { 512 };
    let seeds: u64 = if quick { 2 } else { 10 };
    let fractions = [0.05f64, 0.10, 0.20, 0.30];

    let mut t = Table::new(
        format!("E9 / Figure 5 — churn recovery on ba(n={n}, m=3), b=4 (satisfaction = % of rebuild)"),
        &["churn %", "after leave", "after rejoin", "dirty edges/event", "edge pool"],
    );

    for &f in &fractions {
        let rows: Vec<(f64, f64, f64, f64)> = (0..seeds)
            .into_par_iter()
            .map(|seed| {
                let mut rng = StdRng::seed_from_u64(seed * 53 + 11);
                let g = owp_graph::generators::barabasi_albert(n, 3, &mut rng);
                let m_edges = g.edge_count() as f64;
                let p = Problem::random_over(g, 4, seed);
                let fresh = run_lid(&p, SimConfig::with_seed(seed));
                assert!(fresh.terminated);
                let rebuild = fresh.matching.total_satisfaction(&p);

                let mut sim = ChurnSim::new(&p);
                let mut peers: Vec<NodeId> = p.nodes().collect();
                peers.shuffle(&mut rng);
                let leavers: Vec<NodeId> = peers[..(n as f64 * f) as usize].to_vec();
                let mut dirty = 0usize;
                for &i in &leavers {
                    dirty += sim.leave(i).expect("leave").evaluated;
                }
                // Satisfaction over the full population scale: use the
                // rebuild total as the normalizer throughout.
                let after_leave = sim.active_satisfaction() / rebuild;
                for &i in &leavers {
                    dirty += sim.join(i).expect("rejoin").evaluated;
                }
                let after_rejoin = sim.active_satisfaction() / rebuild;
                let per_event = dirty as f64 / (2.0 * leavers.len() as f64);
                (after_leave, after_rejoin, per_event, m_edges)
            })
            .collect();
        let a: Vec<f64> = rows.iter().map(|r| r.0).collect();
        let b: Vec<f64> = rows.iter().map(|r| r.1).collect();
        let d: Vec<f64> = rows.iter().map(|r| r.2).collect();
        let m: Vec<f64> = rows.iter().map(|r| r.3).collect();
        t.row(vec![
            format!("{:.0}", f * 100.0),
            format!("{:.1}", 100.0 * mean(&a)),
            format!("{:.1}", 100.0 * mean(&b)),
            format!("{:.1}", mean(&d)),
            format!("{:.0}", mean(&m)),
        ]);
    }
    t.note(
        "continuous certified repair: rejoin returns to exactly 100% of the rebuild \
         (the engine maintains the bit-identical matching); each event touches a \
         bounded dirty region, not the edge pool",
    );
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_run_round_trip_is_lossless_and_bounded() {
        let t = super::run(true);
        assert_eq!(t.row_count(), 4);
        for r in 0..t.row_count() {
            let leave: f64 = t.cell(r, 1).parse().unwrap();
            let rejoin: f64 = t.cell(r, 2).parse().unwrap();
            let dirty: f64 = t.cell(r, 3).parse().unwrap();
            let pool: f64 = t.cell(r, 4).parse().unwrap();
            assert!(leave <= 100.0 + 1e-9, "survivors cannot beat the rebuild");
            assert!(
                (rejoin - 100.0).abs() < 0.1,
                "exact repair makes the round-trip lossless, got {rejoin}"
            );
            assert!(
                dirty < pool,
                "dirty region per event ({dirty}) must stay below the pool ({pool})"
            );
        }
    }
}
