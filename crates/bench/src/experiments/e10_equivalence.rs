//! E10 / Table 5 — machine-checked certification of the structural lemmas
//! on a large batch of random instances: LIC ≡ LID (Lemma 6), selection
//! histories are locally-heaviest (Lemma 3), outputs satisfy the Lemma 4
//! certificate, and locks are always symmetric.

use crate::Table;
use owp_core::run_lid;
use owp_graph::{PreferenceTable, Quotas};
use owp_matching::lic::{lic_with_order, SelectionPolicy};
use owp_matching::{verify, Problem};
use owp_simnet::{LatencyModel, SimConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Runs the certification batch.
pub fn run(quick: bool) -> Table {
    let instances: u64 = if quick { 25 } else { 200 };

    let outcomes: Vec<[bool; 5]> = (0..instances)
        .into_par_iter()
        .map(|seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = rng.gen_range(8..40);
            let p_edge = rng.gen_range(0.1..0.6);
            let g = owp_graph::generators::erdos_renyi(n, p_edge, &mut rng);
            let prefs = PreferenceTable::random(&g, &mut rng);
            let quotas = Quotas::random_range(&g, 0, 5, &mut rng);
            let p = Problem::new(g, prefs, quotas);

            let (m_lic, order) = lic_with_order(&p, SelectionPolicy::Random(seed));
            let lid = run_lid(
                &p,
                SimConfig::with_seed(seed).latency(LatencyModel::Uniform { lo: 1, hi: 128 }),
            );
            [
                lid.terminated,
                lid.asymmetric_locks == 0,
                lid.matching.same_edges(&m_lic),
                verify::check_selection_order(&p, &order).is_ok(),
                verify::check_greedy_certificate(&p, &m_lic).is_ok(),
            ]
        })
        .collect();

    let count = |k: usize| outcomes.iter().filter(|o| o[k]).count();
    let mut t = Table::new(
        format!("E10 / Table 5 — lemma certification over {instances} random instances"),
        &["property (paper anchor)", "passed", "of"],
    );
    let props = [
        "LID terminates (Lemma 5)",
        "locks symmetric",
        "LID ≡ LIC edge sets (Lemmas 4, 6)",
        "selection order locally heaviest (Lemma 3)",
        "Lemma 4 greedy certificate",
    ];
    for (k, name) in props.iter().enumerate() {
        let passed = count(k);
        assert_eq!(passed as u64, instances, "{name} failed on some instance");
        t.row(vec![
            name.to_string(),
            passed.to_string(),
            instances.to_string(),
        ]);
    }
    t.note("every property holds on every instance — the theorems' premises are machine-checked");
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_batch_all_pass() {
        let t = super::run(true);
        assert_eq!(t.row_count(), 5);
        for r in 0..5 {
            assert_eq!(t.cell(r, 1), t.cell(r, 2));
        }
    }
}
