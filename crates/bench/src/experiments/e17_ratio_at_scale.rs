//! E17 / Table 12 — the Theorem 2 ratio at realistic sizes.
//!
//! Branch & bound caps the exact-OPT experiments at n ≈ 12; Edmonds'
//! blossom algorithm (the paper's reference [2], implemented in
//! `owp_matching::blossom`) computes the exact one-to-one OPT in O(n³),
//! so the measured LIC/LID approximation ratio can be tracked as overlays
//! grow into the hundreds of nodes.

use crate::{mean, min, std_dev, Table};
use owp_matching::blossom::optimal_weight_blossom;
use owp_matching::lic::{lic, SelectionPolicy};
use owp_matching::Problem;
use rayon::prelude::*;

/// Runs the scale sweep (b = 1; blossom is a one-to-one solver).
pub fn run(quick: bool) -> Table {
    let seeds: u64 = if quick { 4 } else { 20 };
    let sizes: &[usize] = if quick {
        &[50, 100, 200]
    } else {
        &[50, 100, 200, 400, 800]
    };

    let mut t = Table::new(
        "E17 / Table 12 — LIC weight vs blossom-exact OPT at scale (b = 1)",
        &["topology", "n", "ratio mean±std", "ratio min"],
    );

    for topo in ["gnp_deg8", "ba_m4"] {
        for &n in sizes {
            let ratios: Vec<f64> = (0..seeds)
                .into_par_iter()
                .filter_map(|seed| {
                    use rand::SeedableRng;
                    let mut rng = rand::rngs::StdRng::seed_from_u64(seed * 271 + n as u64);
                    let g = match topo {
                        "gnp_deg8" => owp_graph::generators::erdos_renyi(
                            n,
                            8.0 / (n as f64 - 1.0),
                            &mut rng,
                        ),
                        _ => owp_graph::generators::barabasi_albert(n, 4, &mut rng),
                    };
                    let p = Problem::random_over(g, 1, seed);
                    let greedy = lic(&p, SelectionPolicy::InOrder).total_weight(&p);
                    let opt = optimal_weight_blossom(&p).total_weight(&p);
                    (opt > 0.0).then(|| greedy / opt)
                })
                .collect();
            let worst = min(&ratios);
            assert!(worst >= 0.5 - 1e-9, "Theorem 2 violated at n={n}");
            t.row(vec![
                topo.to_string(),
                n.to_string(),
                format!("{:.4}±{:.4}", mean(&ratios), std_dev(&ratios)),
                format!("{worst:.4}"),
            ]);
        }
    }
    t.note("the measured ratio stays ≈0.9 as n grows 16× — the ½ bound is never approached on random overlays");
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_run_bound_holds() {
        let t = super::run(true);
        assert_eq!(t.row_count(), 6);
        for r in 0..t.row_count() {
            let worst: f64 = t.cell(r, 3).parse().unwrap();
            assert!(worst >= 0.5);
        }
    }
}
