//! E22 — forensics: the cost of the always-on black box, and an
//! injected-corruption sweep proving the dump → shrink → replay loop
//! end to end.
//!
//! Two tables:
//!
//! 1. **Recorder overhead** (headline, `bench_guard` schema, all
//!    numeric): the E19 churn workload applied batch-interleaved to two
//!    otherwise identical engines — flight + history rings at their
//!    defaults vs both disabled — and the relative wall-time overhead of
//!    recording. The guard caps the overhead column at 10%: the black
//!    box must stay cheap enough to leave on in production.
//! 2. **Corruption sweep** (textual): for each fault kind × seed, a
//!    recording engine absorbs a seeded churn stream, the fault is
//!    injected, and `certify_with_forensics` must produce a bundle whose
//!    shrunk reproducer (a) is small and (b) replays to the *same*
//!    violation from the bundled checkpoint — the acceptance loop of the
//!    forensic subsystem, measured rather than asserted.
//!
//! With `--forensics-out <path>` the first captured bundle is written as
//! JSON (the input of `owp-inspect forensics`).

use super::e19_dynamic::EventGen;
use crate::Table;
use owp_engine::{normalize_violation, Engine, ForensicBundle, InjectedFault};
use owp_graph::{Graph, NodeId};
use owp_matching::Problem;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Runs E22. Returns the overhead table (tracked by `BENCH_e22.json` /
/// `bench_guard`) and the corruption sweep.
pub fn run(quick: bool) -> Vec<Table> {
    run_with_bundle(quick).0
}

/// [`run`], also surfacing the first forensic bundle the corruption
/// sweep captured so the binary can honor `--forensics-out` without
/// running the sweep twice.
pub fn run_with_bundle(quick: bool) -> (Vec<Table>, Option<ForensicBundle>) {
    let overhead = overhead_table(quick);
    let (sweep, bundle) = corruption_table(quick);
    (vec![overhead, sweep], bundle)
}

/// Ring-on vs ring-off wall time over the E19 churn model. The two
/// engines see the same pre-generated batches, applied interleaved so
/// clock drift hits both sides equally.
fn overhead_table(quick: bool) -> Table {
    let n: usize = if quick { 4_000 } else { 20_000 };
    let batches_n: usize = if quick { 12 } else { 32 };
    let events_per_batch = n / 100;

    let mut rng = StdRng::seed_from_u64(0xE22);
    let g = owp_graph::generators::barabasi_albert(n, 5, &mut rng);
    let p = Problem::random_over(g.clone(), 4, 1);
    let mut on = Engine::builder(p.clone())
        .flight_capacity(owp_engine::DEFAULT_FLIGHT_CAPACITY)
        .history_capacity(owp_engine::DEFAULT_HISTORY_CAPACITY)
        .build();
    let mut off = Engine::builder(p).flight_capacity(0).history_capacity(0).build();

    let mut gen = EventGen::new(&g, 0xE22);
    let batches: Vec<_> = (0..batches_n).map(|_| gen.batch(events_per_batch)).collect();

    // Warm both engines on the first batch so arena growth is not billed
    // to either side, then time the rest interleaved.
    on.apply_batch(&batches[0]).expect("generated batches are valid");
    off.apply_batch(&batches[0]).expect("generated batches are valid");
    let (mut ms_on, mut ms_off) = (0.0f64, 0.0f64);
    for b in &batches[1..] {
        let t0 = Instant::now();
        on.apply_batch(b).expect("generated batches are valid");
        ms_on += t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        off.apply_batch(b).expect("generated batches are valid");
        ms_off += t1.elapsed().as_secs_f64() * 1e3;
    }
    let overhead_pct = if ms_off > 0.0 { 100.0 * (ms_on - ms_off) / ms_off } else { 0.0 };

    let mut t = Table::new(
        format!(
            "E22 — flight + history recording overhead on ba(m=5), n={n}, b=4, \
             {} batches of {events_per_batch} mixed events",
            batches_n - 1
        ),
        &["ring", "events/batch", "batches", "ms", "overhead %"],
    );
    t.row(vec![
        "0".into(),
        events_per_batch.to_string(),
        (batches_n - 1).to_string(),
        format!("{ms_off:.3}"),
        "0.0".into(),
    ]);
    t.row(vec![
        "1".into(),
        events_per_batch.to_string(),
        (batches_n - 1).to_string(),
        format!("{ms_on:.3}"),
        format!("{overhead_pct:.1}"),
    ]);
    t.note(
        "ring=1 runs the default flight + history capacities, ring=0 disables both; \
         bench_guard caps the overhead column at 10%",
    );
    t
}

/// A fault that provably breaks certification on `e`, found through the
/// public probe API (clone, inject, certify).
fn find_fault(e: &Engine, g: &Graph, kind: &str) -> InjectedFault {
    match kind {
        "phantom" => {
            let dp = e.dynamic();
            let edge = g
                .edges()
                .find(|&ed| dp.is_alive(ed) && !e.matching().contains(ed))
                .expect("churned BA instance leaves unselected alive edges");
            InjectedFault::PhantomEdge { edge }
        }
        _ => g
            .nodes()
            .filter(|&i| e.dynamic().is_active(i))
            .find_map(|node| {
                let mut list: Vec<NodeId> = g.neighbor_ids(node).collect();
                if list.len() < 2 {
                    return None;
                }
                list.reverse();
                let mut probe = e.clone();
                probe.inject_fault(InjectedFault::SkippedRepair {
                    node,
                    list: list.clone(),
                });
                probe
                    .certify()
                    .is_err()
                    .then_some(InjectedFault::SkippedRepair { node, list })
            })
            .expect("some preference reversal perturbs the matching"),
    }
}

fn corruption_table(quick: bool) -> (Table, Option<ForensicBundle>) {
    let n: usize = if quick { 1_600 } else { 5_000 };
    let seeds: &[u64] = if quick { &[11, 12] } else { &[11, 12, 13] };
    const WARM_BATCHES: usize = 12;
    const HISTORY: usize = 16;

    let mut rng = StdRng::seed_from_u64(0xE22 + 1);
    let g = owp_graph::generators::barabasi_albert(n, 4, &mut rng);

    let mut t = Table::new(
        format!(
            "E22 — injected-corruption sweep on ba(m=4), n={n}, b=3: \
             {WARM_BATCHES} batches of {} events, history ring {HISTORY}, then one fault",
            n / 100
        ),
        &["fault", "seed", "detect epoch", "window", "repro len", "replays", "reproduced"],
    );
    let mut first_bundle: Option<ForensicBundle> = None;

    for kind in ["phantom", "skip"] {
        for &seed in seeds {
            let p = Problem::random_over(g.clone(), 3, seed);
            let mut e = Engine::builder(p).history_capacity(HISTORY).build();
            let mut gen = EventGen::new(&g, seed);
            for _ in 0..WARM_BATCHES {
                e.apply_batch(&gen.batch(n / 100)).expect("generated batches are valid");
            }
            e.certify().expect("engine is canonical before injection");

            e.inject_fault(find_fault(&e, &g, kind));
            let bundle = e
                .certify_with_forensics(Some(seed), None)
                .expect_err("an injected fault must fail certification");

            let repro = bundle.reproducer();
            let (window, replays) = match &bundle.shrunk {
                Some(s) => (format!("{}..={}", s.start, s.end), s.replays.to_string()),
                None => ("-".into(), "-".into()),
            };
            let reproduced = match bundle.verify() {
                Ok(Some(v)) => {
                    if normalize_violation(&v) == normalize_violation(&bundle.reason) {
                        "yes"
                    } else {
                        "other"
                    }
                }
                Ok(None) => "no",
                Err(_) => "error",
            };
            t.row(vec![
                kind.into(),
                seed.to_string(),
                bundle.epoch.to_string(),
                window,
                repro.len().to_string(),
                replays,
                reproduced.into(),
            ]);
            if first_bundle.is_none() {
                first_bundle = Some(*bundle);
            }
        }
    }
    t.note(
        "reproduced = the shrunk window, replayed from the bundled checkpoint \
         against a fresh engine, fails certification with the same violation",
    );
    (t, first_bundle)
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_sweep_shrinks_and_reproduces_every_fault() {
        let (tables, bundle) = super::run_with_bundle(true);
        assert_eq!(tables.len(), 2);

        let overhead = &tables[0];
        assert_eq!(overhead.row_count(), 2);
        let pct: f64 = overhead.cell(1, 4).parse().unwrap();
        assert!(
            pct < 50.0,
            "recording overhead should be small even under timer noise: {pct}%"
        );

        let sweep = &tables[1];
        assert_eq!(sweep.row_count(), 4, "2 fault kinds x 2 quick seeds");
        for r in 0..sweep.row_count() {
            let len: usize = sweep.cell(r, 4).parse().unwrap();
            assert!(len >= 1 && len <= 10, "row {r}: reproducer stays small, got {len}");
            assert_eq!(sweep.cell(r, 6), "yes", "row {r}: must replay to the same violation");
        }

        let bundle = bundle.expect("the sweep captured at least one bundle");
        assert_eq!(bundle.trigger, "certify");
        let round_trip = owp_engine::ForensicBundle::parse(&bundle.to_json()).unwrap();
        assert_eq!(round_trip, bundle, "bundle JSON round-trips");
    }
}
