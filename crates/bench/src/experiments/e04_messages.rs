//! E4 / Figure 2 — message complexity: PROP and REJ messages per node as the
//! network grows, for unstructured (G(n,p)) and scale-free (BA) overlays.
//!
//! The structural bound is ≤ 2 messages per edge direction; the figure shows
//! the measured constant is far smaller and flat in `n` for constant average
//! degree (i.e. the protocol is genuinely local).

use crate::{mean, Table};
use owp_core::run_lid;
use owp_matching::Problem;
use owp_simnet::{MessageKind, SimConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

/// Runs the sweep. `quick` caps `n`.
pub fn run(quick: bool) -> Table {
    let sizes: &[usize] = if quick {
        &[64, 128, 256]
    } else {
        &[64, 128, 256, 512, 1024, 2048, 4096]
    };
    let seeds: u64 = if quick { 2 } else { 10 };
    let avg_degree = 12.0;

    let mut t = Table::new(
        "E4 / Figure 2 — messages per node vs n (avg degree ≈ 12)",
        &["topology", "n", "b", "PROP/node", "REJ/node", "total/node", "total/edge"],
    );

    for topo in ["gnp", "ba"] {
        for &n in sizes {
            for b in [2u32, 4, 8] {
                let samples: Vec<(f64, f64, f64)> = (0..seeds)
                    .into_par_iter()
                    .map(|seed| {
                        let mut rng = StdRng::seed_from_u64(seed * 131 + n as u64);
                        let g = match topo {
                            "gnp" => owp_graph::generators::erdos_renyi(
                                n,
                                avg_degree / (n as f64 - 1.0),
                                &mut rng,
                            ),
                            _ => owp_graph::generators::barabasi_albert(n, 6, &mut rng),
                        };
                        let m = g.edge_count() as f64;
                        let p = Problem::random_over(g, b, seed);
                        let r = run_lid(&p, SimConfig::with_seed(seed));
                        assert!(r.terminated);
                        (
                            r.stats.sent_of(MessageKind::Prop) as f64 / n as f64,
                            r.stats.sent_of(MessageKind::Rej) as f64 / n as f64,
                            r.stats.sent as f64 / m.max(1.0),
                        )
                    })
                    .collect();
                let prop: Vec<f64> = samples.iter().map(|s| s.0).collect();
                let rej: Vec<f64> = samples.iter().map(|s| s.1).collect();
                let per_edge: Vec<f64> = samples.iter().map(|s| s.2).collect();
                t.row(vec![
                    topo.to_string(),
                    n.to_string(),
                    b.to_string(),
                    format!("{:.2}", mean(&prop)),
                    format!("{:.2}", mean(&rej)),
                    format!("{:.2}", mean(&prop) + mean(&rej)),
                    format!("{:.3}", mean(&per_edge)),
                ]);
            }
        }
    }
    t.note("messages per edge stay bounded (< 4) and per-node counts track b and degree, not n");
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_run() {
        let t = super::run(true);
        assert_eq!(t.row_count(), 2 * 3 * 3);
        // Total per edge bounded by the structural envelope.
        for r in 0..t.row_count() {
            let v: f64 = t.cell(r, 6).parse().unwrap();
            assert!(v < 4.0, "messages per edge {v} out of envelope");
        }
    }
}
