//! E5 / Figure 3 — convergence: synchronous round complexity and
//! asynchronous completion time as the network and quotas grow.
//!
//! The synchronous leg runs through [`run_lid_sync_series`], so besides the
//! round count we also get the *stabilization round* — the first round after
//! which the matching no longer changes — for free from the telemetry
//! series. The gap between the two is pure termination detection.

use crate::{mean, Table};
use owp_core::{run_lid, run_lid_sync_series};
use owp_matching::Problem;
use owp_metrics::{Auditor, MetricsRegistry};
use owp_simnet::{LatencyModel, SimConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

/// Runs the sweep. `quick` caps `n`.
pub fn run(quick: bool) -> Table {
    run_inner(quick, None)
}

/// [`run`] with metrics: per-run histograms (`lid_sync_rounds`,
/// `lid_stabilization_round`, `lid_async_completion_ticks`) land in `reg`,
/// and every synchronous result is audited (quota/mutuality/Lemma 4) —
/// the auditor's violation counter stays at zero on a healthy build.
pub fn run_with_metrics(quick: bool, reg: &MetricsRegistry) -> Table {
    run_inner(quick, Some(reg))
}

fn run_inner(quick: bool, reg: Option<&MetricsRegistry>) -> Table {
    let sizes: &[usize] = if quick {
        &[64, 256]
    } else {
        &[64, 128, 256, 512, 1024, 2048]
    };
    let seeds: u64 = if quick { 2 } else { 10 };

    // Handles are cloned once here (cold path); the rayon closures record
    // through them lock-free.
    let hists = reg.map(|r| {
        (
            r.histogram("lid_sync_rounds"),
            r.histogram("lid_stabilization_round"),
            r.histogram("lid_async_completion_ticks"),
        )
    });

    let mut t = Table::new(
        "E5 / Figure 3 — convergence vs n (G(n,p), avg degree ≈ 12)",
        &[
            "n",
            "b",
            "sync rounds",
            "stable round",
            "async t (const 10)",
            "async t (exp mean 10)",
        ],
    );

    for &n in sizes {
        for b in [2u32, 8] {
            let rows: Vec<(f64, f64, f64, f64)> = (0..seeds)
                .into_par_iter()
                .map(|seed| {
                    let mut rng = StdRng::seed_from_u64(seed * 7919 + n as u64);
                    let g = owp_graph::generators::erdos_renyi(
                        n,
                        12.0 / (n as f64 - 1.0),
                        &mut rng,
                    );
                    let p = Problem::random_over(g, b, seed + 5);
                    let (sync, series) = run_lid_sync_series(&p);
                    assert!(sync.terminated);
                    let stable = series.stabilization_round().unwrap_or(0);
                    let c = run_lid(
                        &p,
                        SimConfig::with_seed(seed).latency(LatencyModel::Constant { ticks: 10 }),
                    );
                    let e = run_lid(
                        &p,
                        SimConfig::with_seed(seed).latency(LatencyModel::Exponential { mean: 10.0 }),
                    );
                    assert!(c.terminated && e.terminated);
                    if let Some((h_rounds, h_stable, h_async)) = &hists {
                        h_rounds.observe(sync.rounds);
                        h_stable.observe(stable);
                        h_async.observe(c.end_time);
                        h_async.observe(e.end_time);
                    }
                    if let Some(r) = reg {
                        // Per-closure auditor: the handles it publishes
                        // through are shared registry families, so the
                        // violation counter aggregates across the sweep.
                        let mut auditor = Auditor::new(r);
                        auditor.audit_matching(&p, &sync.matching);
                    }
                    (
                        sync.rounds as f64,
                        stable as f64,
                        c.end_time as f64,
                        e.end_time as f64,
                    )
                })
                .collect();
            let rounds: Vec<f64> = rows.iter().map(|r| r.0).collect();
            let stable: Vec<f64> = rows.iter().map(|r| r.1).collect();
            let tc: Vec<f64> = rows.iter().map(|r| r.2).collect();
            let te: Vec<f64> = rows.iter().map(|r| r.3).collect();
            t.row(vec![
                n.to_string(),
                b.to_string(),
                format!("{:.1}", mean(&rounds)),
                format!("{:.1}", mean(&stable)),
                format!("{:.0}", mean(&tc)),
                format!("{:.0}", mean(&te)),
            ]);
        }
    }
    t.note("rounds grow slowly (rejection chains), not linearly in n — the protocol is local");
    t.note("the matching stabilizes before the protocol quiesces: the tail rounds are termination detection");
    t
}

#[cfg(test)]
mod tests {
    use owp_metrics::MetricsRegistry;

    #[test]
    fn metrics_variant_fills_histograms_and_audits_clean() {
        let reg = MetricsRegistry::new();
        let t = super::run_with_metrics(true, &reg);
        assert_eq!(t.row_count(), 4);
        // 4 cells × 2 seeds = 8 sync runs, each observed once.
        assert_eq!(reg.histogram("lid_sync_rounds").count(), 8);
        assert_eq!(reg.histogram("lid_async_completion_ticks").count(), 16);
        // Every audited LID matching was certified clean.
        assert_eq!(reg.counter("audit_checks_total").get(), 8);
        assert_eq!(reg.counter("audit_violations_total").get(), 0);
        assert_eq!(reg.gauge("audit_epsilon_blocking_edges").get(), 0.0);
    }

    #[test]
    fn quick_run() {
        let t = super::run(true);
        assert_eq!(t.row_count(), 4);
        for r in 0..t.row_count() {
            let rounds: f64 = t.cell(r, 2).parse().unwrap();
            let stable: f64 = t.cell(r, 3).parse().unwrap();
            assert!(rounds >= 1.0);
            assert!(
                stable <= rounds,
                "stabilization cannot come after quiescence: {stable} > {rounds}"
            );
        }
    }
}
