//! E5 / Figure 3 — convergence: synchronous round complexity and
//! asynchronous completion time as the network and quotas grow.
//!
//! The synchronous leg runs through [`run_lid_sync_series`], so besides the
//! round count we also get the *stabilization round* — the first round after
//! which the matching no longer changes — for free from the telemetry
//! series. The gap between the two is pure termination detection.

use crate::{mean, Table};
use owp_core::{run_lid, run_lid_sync_series};
use owp_matching::Problem;
use owp_simnet::{LatencyModel, SimConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

/// Runs the sweep. `quick` caps `n`.
pub fn run(quick: bool) -> Table {
    let sizes: &[usize] = if quick {
        &[64, 256]
    } else {
        &[64, 128, 256, 512, 1024, 2048]
    };
    let seeds: u64 = if quick { 2 } else { 10 };

    let mut t = Table::new(
        "E5 / Figure 3 — convergence vs n (G(n,p), avg degree ≈ 12)",
        &[
            "n",
            "b",
            "sync rounds",
            "stable round",
            "async t (const 10)",
            "async t (exp mean 10)",
        ],
    );

    for &n in sizes {
        for b in [2u32, 8] {
            let rows: Vec<(f64, f64, f64, f64)> = (0..seeds)
                .into_par_iter()
                .map(|seed| {
                    let mut rng = StdRng::seed_from_u64(seed * 7919 + n as u64);
                    let g = owp_graph::generators::erdos_renyi(
                        n,
                        12.0 / (n as f64 - 1.0),
                        &mut rng,
                    );
                    let p = Problem::random_over(g, b, seed + 5);
                    let (sync, series) = run_lid_sync_series(&p);
                    assert!(sync.terminated);
                    let stable = series.stabilization_round().unwrap_or(0);
                    let c = run_lid(
                        &p,
                        SimConfig::with_seed(seed).latency(LatencyModel::Constant { ticks: 10 }),
                    );
                    let e = run_lid(
                        &p,
                        SimConfig::with_seed(seed).latency(LatencyModel::Exponential { mean: 10.0 }),
                    );
                    assert!(c.terminated && e.terminated);
                    (
                        sync.rounds as f64,
                        stable as f64,
                        c.end_time as f64,
                        e.end_time as f64,
                    )
                })
                .collect();
            let rounds: Vec<f64> = rows.iter().map(|r| r.0).collect();
            let stable: Vec<f64> = rows.iter().map(|r| r.1).collect();
            let tc: Vec<f64> = rows.iter().map(|r| r.2).collect();
            let te: Vec<f64> = rows.iter().map(|r| r.3).collect();
            t.row(vec![
                n.to_string(),
                b.to_string(),
                format!("{:.1}", mean(&rounds)),
                format!("{:.1}", mean(&stable)),
                format!("{:.0}", mean(&tc)),
                format!("{:.0}", mean(&te)),
            ]);
        }
    }
    t.note("rounds grow slowly (rejection chains), not linearly in n — the protocol is local");
    t.note("the matching stabilizes before the protocol quiesces: the tail rounds are termination detection");
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_run() {
        let t = super::run(true);
        assert_eq!(t.row_count(), 4);
        for r in 0..t.row_count() {
            let rounds: f64 = t.cell(r, 2).parse().unwrap();
            let stable: f64 = t.cell(r, 3).parse().unwrap();
            assert!(rounds >= 1.0);
            assert!(
                stable <= rounds,
                "stabilization cannot come after quiescence: {stable} > {rounds}"
            );
        }
    }
}
