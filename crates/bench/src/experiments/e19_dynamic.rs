//! E19 — dynamic repair: latency and satisfaction movement of the
//! event-driven engine vs batch size, against the from-scratch baseline.
//!
//! For each batch size (a fraction of `n`), the engine absorbs batches of
//! mixed events — leaves, rejoins, edge churn, quota changes, preference
//! re-ranks — and we time the bounded repair. The baseline is what a
//! non-incremental system does after the same batch: re-sort the edge
//! order and re-run LIC on the current alive instance. Because the
//! baseline *is* the certification reference, every timed batch also
//! checks the engine's headline invariant: the repaired matching is
//! bit-identical to the from-scratch run.
//!
//! The headline table (BA topology) is the `bench_guard` schema: all
//! numeric, keyed by the batch-size column, with repair and rebuild wall
//! times guarded against `BENCH_e19.json`.

use crate::{mean, Table};
use owp_engine::{Engine, EngineEvent};
use owp_graph::{Graph, NodeId};
use owp_matching::{lic, EdgeOrder, Problem, SelectionPolicy};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use std::time::Instant;

/// Batches measured per (topology, batch size) cell.
const BATCHES: usize = 8;

/// Runs the dynamic-repair sweep. Returns the BA headline table (tracked
/// by `BENCH_e19.json` / `bench_guard`) and the ER counterpart.
pub fn run(quick: bool) -> Vec<Table> {
    run_inner(quick, None)
}

/// [`run`] with metrics: batches go through `apply_batch_traced` into a
/// [`owp_metrics::MetricsRecorder`] (batch-size and dirty-region
/// histograms, add/remove counters), repair wall times land in a
/// `engine_repair_wall_us` histogram, and an [`owp_metrics::Auditor`]
/// consumes every `DeltaReport` and re-audits the maintained matching
/// after each batch. The un-instrumented [`run`] stays the `bench_guard`
/// surface, so guarded wall times never include the audit cost.
pub fn run_with_metrics(quick: bool, reg: &owp_metrics::MetricsRegistry) -> Vec<Table> {
    run_inner(quick, Some(reg))
}

fn run_inner(quick: bool, reg: Option<&owp_metrics::MetricsRegistry>) -> Vec<Table> {
    let n: usize = if quick { 5_000 } else { 20_000 };
    let pcts: &[f64] = if quick { &[0.2, 1.0] } else { &[0.1, 0.5, 1.0] };

    let mut rng = StdRng::seed_from_u64(0xE19);
    let ba = owp_graph::generators::barabasi_albert(n, 5, &mut rng);
    let er = owp_graph::generators::erdos_renyi(n, 10.0 / n as f64, &mut rng);

    vec![
        sweep("ba(m=5)", ba, n, pcts, 1, reg),
        sweep("er(avg deg 10)", er, n, pcts, 2, reg),
    ]
}

fn sweep(
    topology: &str,
    g: Graph,
    n: usize,
    pcts: &[f64],
    seed: u64,
    reg: Option<&owp_metrics::MetricsRegistry>,
) -> Table {
    let m = g.edge_count();
    let mut t = Table::new(
        format!(
            "E19 — dynamic repair vs batch size on {topology}, n={n}, m={m}, b=4 \
             (means over {BATCHES} batches)"
        ),
        &[
            "batch %",
            "events",
            "repair ms",
            "rebuild ms",
            "speedup",
            "dirty edges",
            "dSigmaS",
        ],
    );

    for &pct in pcts {
        // One auditor per engine lifetime: epochs restart at 1 for every
        // batch-size cell, so monotonicity must be tracked per engine. The
        // registry handles are shared families, so counts still aggregate.
        let mut instruments = reg.map(|r| {
            (
                owp_metrics::MetricsRecorder::new(r),
                owp_metrics::Auditor::new(r),
                r.histogram("engine_repair_wall_us"),
            )
        });
        let p = Problem::random_over(g.clone(), 4, seed);
        let mut engine = Engine::new(p);
        let mut gen = EventGen::new(&g, seed * 1000 + (pct * 10.0) as u64);
        let events_per_batch = ((n as f64 * pct / 100.0) as usize).max(1);

        let mut repair_ms = Vec::with_capacity(BATCHES);
        let mut rebuild_ms = Vec::with_capacity(BATCHES);
        let mut dirty = Vec::with_capacity(BATCHES);
        let mut dsat = Vec::with_capacity(BATCHES);
        for _ in 0..BATCHES {
            let batch = gen.batch(events_per_batch);

            let t0 = Instant::now();
            let report = match instruments.as_mut() {
                None => engine.apply_batch(&batch).expect("generated batches are valid"),
                Some((rec, _, _)) => engine
                    .apply_batch_traced(&batch, rec)
                    .expect("generated batches are valid"),
            };
            repair_ms.push(t0.elapsed().as_secs_f64() * 1e3);
            if let Some((_, auditor, wall)) = instruments.as_mut() {
                wall.observe((repair_ms.last().unwrap() * 1e3) as u64);
                auditor.observe_delta(&report);
                auditor.audit_engine(&engine);
            }
            dirty.push(report.evaluated as f64);
            dsat.push(report.delta_satisfaction);

            // From-scratch baseline on the same post-batch instance:
            // re-sort the edge order and re-run LIC (snapshot assembly is
            // not charged to the baseline). Doubles as certification.
            let (snap, map) = engine.dynamic().snapshot_with_map();
            let t1 = Instant::now();
            let order = EdgeOrder::compute(&snap.graph, &snap.weights);
            let reference = lic(&snap, SelectionPolicy::InOrder);
            rebuild_ms.push(t1.elapsed().as_secs_f64() * 1e3);
            assert_eq!(order, snap.order);
            assert_eq!(reference.size(), engine.matching().size());
            for (k, &ue) in map.iter().enumerate() {
                assert_eq!(
                    reference.contains(owp_graph::EdgeId(k as u32)),
                    engine.matching().contains(ue),
                    "{topology} batch {pct}%: certified repair violated at {ue:?}"
                );
            }
        }

        let speedup = mean(&rebuild_ms) / mean(&repair_ms).max(f64::MIN_POSITIVE);
        t.row(vec![
            format!("{pct}"),
            events_per_batch.to_string(),
            format!("{:.3}", mean(&repair_ms)),
            format!("{:.3}", mean(&rebuild_ms)),
            format!("{:.1}", speedup),
            format!("{:.0}", mean(&dirty)),
            format!("{:.3}", mean(&dsat)),
        ]);
    }
    t.note(
        "every batch is certified: the repaired matching is bit-identical to the \
         from-scratch LIC run it is timed against",
    );
    t
}

/// Generates valid mixed event batches against a mirror of the engine's
/// membership state (so batches validate even mid-sequence). Shared with
/// E22, which replays the same churn model through recording engines.
pub(crate) struct EventGen {
    rng: StdRng,
    active: Vec<bool>,
    inactive: Vec<NodeId>,
    present: Vec<bool>,
    absent: Vec<owp_graph::EdgeId>,
    endpoints: Vec<(NodeId, NodeId)>,
    neighbourhoods: Vec<Vec<NodeId>>,
}

impl EventGen {
    pub(crate) fn new(g: &Graph, seed: u64) -> Self {
        EventGen {
            rng: StdRng::seed_from_u64(seed),
            active: vec![true; g.node_count()],
            inactive: Vec::new(),
            present: vec![true; g.edge_count()],
            absent: Vec::new(),
            endpoints: g.edges().map(|e| g.endpoints(e)).collect(),
            neighbourhoods: g.nodes().map(|i| g.neighbor_ids(i).collect()).collect(),
        }
    }

    pub(crate) fn batch(&mut self, len: usize) -> Vec<EngineEvent> {
        (0..len).map(|_| self.next_event()).collect()
    }

    fn next_event(&mut self) -> EngineEvent {
        let n = self.active.len() as u32;
        let m = self.present.len() as u32;
        loop {
            match self.rng.gen_range(0u32..100) {
                // Leaves and rejoins dominate — the paper's churn model.
                0..=34 => {
                    let i = NodeId(self.rng.gen_range(0..n));
                    if self.active[i.index()] {
                        self.active[i.index()] = false;
                        self.inactive.push(i);
                        return EngineEvent::NodeLeave { node: i };
                    }
                }
                35..=69 => {
                    if let Some(k) = (!self.inactive.is_empty())
                        .then(|| self.rng.gen_range(0..self.inactive.len()))
                    {
                        let i = self.inactive.swap_remove(k);
                        self.active[i.index()] = true;
                        return EngineEvent::NodeJoin { node: i };
                    }
                }
                70..=79 => {
                    let e = owp_graph::EdgeId(self.rng.gen_range(0..m));
                    if self.present[e.index()] {
                        self.present[e.index()] = false;
                        self.absent.push(e);
                        let (u, v) = self.endpoints[e.index()];
                        return EngineEvent::EdgeRemove { u, v };
                    }
                }
                80..=89 => {
                    if let Some(k) = (!self.absent.is_empty())
                        .then(|| self.rng.gen_range(0..self.absent.len()))
                    {
                        let e = self.absent.swap_remove(k);
                        self.present[e.index()] = true;
                        let (u, v) = self.endpoints[e.index()];
                        return EngineEvent::EdgeAdd { u, v };
                    }
                }
                90..=94 => {
                    let i = self.rng.gen_range(0..n);
                    let quota = self.rng.gen_range(1u32..=6);
                    return EngineEvent::QuotaChange { node: NodeId(i), quota };
                }
                _ => {
                    let i = self.rng.gen_range(0..n) as usize;
                    let mut list = self.neighbourhoods[i].clone();
                    list.shuffle(&mut self.rng);
                    return EngineEvent::PreferenceUpdate { node: NodeId(i as u32), list };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn metrics_variant_audits_every_batch_clean() {
        let reg = owp_metrics::MetricsRegistry::new();
        let tables = super::run_with_metrics(true, &reg);
        assert_eq!(tables.len(), 2);
        // 2 topologies × 2 batch sizes × 8 batches, each: one delta
        // observed, one engine audit, one wall-time sample.
        let batches = 2 * 2 * super::BATCHES as u64;
        assert_eq!(reg.histogram("engine_batch_events").count(), batches);
        assert_eq!(reg.histogram("engine_repair_wall_us").count(), batches);
        assert_eq!(reg.counter("audit_checks_total").get(), 2 * batches);
        assert_eq!(reg.counter("audit_violations_total").get(), 0);
        assert!(reg.counter("engine_edges_added_total").get() > 0);
        assert!(reg.gauge("audit_engine_matching_size").get() > 0.0);
    }

    #[test]
    fn quick_run_beats_rebuild_and_certifies() {
        let tables = super::run(true);
        assert_eq!(tables.len(), 2, "BA and ER");
        for t in &tables {
            assert_eq!(t.row_count(), 2);
            for r in 0..t.row_count() {
                let repair: f64 = t.cell(r, 2).parse().unwrap();
                let rebuild: f64 = t.cell(r, 3).parse().unwrap();
                let speedup: f64 = t.cell(r, 4).parse().unwrap();
                let dirty: f64 = t.cell(r, 5).parse().unwrap();
                assert!(repair > 0.0 && rebuild > 0.0);
                assert!(
                    speedup >= 2.0,
                    "bounded repair should clearly beat a rebuild even quick: {speedup}x"
                );
                assert!(dirty > 0.0, "batches must actually perturb the matching");
            }
        }
    }
}
