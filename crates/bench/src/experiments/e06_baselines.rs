//! E6 / Table 3 — LID against the baselines: global greedy (identical by
//! Lemma 6), random maximal matching, preference-rank greedy, and
//! better-response dynamics (the stability-seeking alternative), plus
//! Drake–Hougardy path growing in the one-to-one regime.

use crate::{mean, Table};
use owp_core::run_lid;
use owp_matching::baselines::{global_greedy, path_growing, random_maximal, rank_greedy};
use owp_matching::stable::blocking::blocking_pairs;
use owp_matching::stable::dynamics::better_response_from_empty;
use owp_matching::{BMatching, MatchingReport, Problem};
use owp_simnet::SimConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

struct Agg {
    weight: Vec<f64>,
    sat: Vec<f64>,
    sat_min: Vec<f64>,
    jain: Vec<f64>,
    blocking: Vec<f64>,
}

impl Agg {
    fn new() -> Self {
        Agg {
            weight: vec![],
            sat: vec![],
            sat_min: vec![],
            jain: vec![],
            blocking: vec![],
        }
    }
    fn push(&mut self, p: &Problem, m: &BMatching) {
        let r = MatchingReport::compute(p, m);
        self.weight.push(r.total_weight);
        self.sat.push(r.satisfaction_total);
        self.sat_min.push(r.satisfaction_min);
        self.jain.push(r.jain_index);
        self.blocking.push(blocking_pairs(p, m).len() as f64);
    }
    fn row(&self, name: &str, t: &mut Table) {
        t.row(vec![
            name.to_string(),
            format!("{:.2}", mean(&self.weight)),
            format!("{:.2}", mean(&self.sat)),
            format!("{:.3}", mean(&self.sat_min)),
            format!("{:.3}", mean(&self.jain)),
            format!("{:.1}", mean(&self.blocking)),
        ]);
    }
}

fn run_family(label: &str, b: u32, quick: bool) -> Table {
    let seeds: u64 = if quick { 3 } else { 25 };
    let n = if quick { 96 } else { 256 };

    let per_seed: Vec<Vec<(usize, BMatching)>> = (0..seeds)
        .into_par_iter()
        .map(|seed| {
            let mut rng = StdRng::seed_from_u64(seed * 31 + 7);
            let g = match label {
                "gnp" => owp_graph::generators::erdos_renyi(n, 10.0 / (n as f64 - 1.0), &mut rng),
                _ => owp_graph::generators::barabasi_albert(n, 5, &mut rng),
            };
            let p = Problem::random_over(g, b, seed);
            let mut out: Vec<(usize, BMatching)> = Vec::new();
            let lid = run_lid(&p, SimConfig::with_seed(seed));
            assert!(lid.terminated);
            out.push((0, lid.matching));
            out.push((1, global_greedy(&p)));
            out.push((2, random_maximal(&p, seed)));
            out.push((3, rank_greedy(&p)));
            let (brm, _) = better_response_from_empty(&p, 200_000);
            out.push((4, brm));
            if b == 1 {
                out.push((5, path_growing(&p)));
            }
            out
        })
        .collect();

    // Problems are seed-deterministic; re-derive them for the scoring pass
    // instead of sending them across the rayon boundary.
    let names = [
        "LID (this paper)",
        "global greedy",
        "random maximal",
        "rank greedy",
        "better-response (cap 200k)",
        "path growing (b=1)",
    ];
    let mut aggs: Vec<Agg> = (0..names.len()).map(|_| Agg::new()).collect();
    for (seed, matchings) in per_seed.into_iter().enumerate() {
        let seed = seed as u64;
        let mut rng = StdRng::seed_from_u64(seed * 31 + 7);
        let g = match label {
            "gnp" => owp_graph::generators::erdos_renyi(n, 10.0 / (n as f64 - 1.0), &mut rng),
            _ => owp_graph::generators::barabasi_albert(n, 5, &mut rng),
        };
        let p = Problem::random_over(g, b, seed);
        for (alg, m) in matchings {
            aggs[alg].push(&p, &m);
        }
    }

    let mut t = Table::new(
        format!("E6 / Table 3 — algorithm comparison on {label}(n={n}), b={b}"),
        &["algorithm", "weight", "satisfaction", "min sat", "Jain", "blocking pairs"],
    );
    for (i, name) in names.iter().enumerate() {
        if !aggs[i].weight.is_empty() {
            aggs[i].row(name, &mut t);
        }
    }
    t.note("LID ≡ global greedy (Lemma 6). Random pairing trails badly; rank greedy is close (uniform quotas make the orders align — see E13) but carries no guarantee");
    t
}

/// Runs both topology families at b = 4 and the b = 1 regime with path
/// growing included.
pub fn run(quick: bool) -> Vec<Table> {
    vec![
        run_family("gnp", 4, quick),
        run_family("ba", 4, quick),
        run_family("gnp", 1, quick),
    ]
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_run_lid_matches_greedy() {
        let tables = super::run(true);
        assert_eq!(tables.len(), 3);
        for t in &tables {
            // Row 0 = LID, row 1 = global greedy: identical weight column.
            assert_eq!(t.cell(0, 1), t.cell(1, 1), "LID and greedy diverge");
        }
    }
}
