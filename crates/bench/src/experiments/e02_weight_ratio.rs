//! E2 / Table 1 — measured weight of LIC/LID against the exact optimum
//! (Theorem 2's `½` bound) across topologies, densities and quotas.

use crate::{mean, min, std_dev, Table};
use owp_graph::generators::{barabasi_albert, complete, watts_strogatz};
use owp_matching::exact::{optimal_weight, DEFAULT_BUDGET};
use owp_matching::lic::{lic, SelectionPolicy};
use owp_matching::Problem;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

fn instance(topo: &str, b: u32, seed: u64) -> Problem {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = match topo {
        "gnp(12,0.4)" => owp_graph::generators::erdos_renyi(12, 0.4, &mut rng),
        "gnp(12,0.7)" => owp_graph::generators::erdos_renyi(12, 0.7, &mut rng),
        "ba(12,3)" => barabasi_albert(12, 3, &mut rng),
        "ws(12,4,0.3)" => watts_strogatz(12, 4, 0.3, &mut rng),
        "complete(10)" => complete(10),
        other => panic!("unknown topology {other}"),
    };
    Problem::random_over(g, b, seed.wrapping_mul(977))
}

/// Runs the sweep. `quick` trims seeds for CI.
pub fn run(quick: bool) -> Table {
    let seeds: u64 = if quick { 3 } else { 30 };
    let topologies = [
        "gnp(12,0.4)",
        "gnp(12,0.7)",
        "ba(12,3)",
        "ws(12,4,0.3)",
        "complete(10)",
    ];
    let quotas = [1u32, 2, 3];

    let mut t = Table::new(
        "E2 / Table 1 — LIC weight vs exact OPT (Theorem 2: ratio ≥ 0.5)",
        &["topology", "b", "ratio mean±std", "ratio min", "proven"],
    );

    for topo in topologies {
        for b in quotas {
            let results: Vec<(f64, bool)> = (0..seeds)
                .into_par_iter()
                .filter_map(|seed| {
                    let p = instance(topo, b, seed);
                    if p.edge_count() == 0 {
                        return None;
                    }
                    let greedy = lic(&p, SelectionPolicy::InOrder).total_weight(&p);
                    let opt = optimal_weight(&p, DEFAULT_BUDGET);
                    if opt.value <= 0.0 {
                        return None;
                    }
                    Some((greedy / opt.value, opt.proven_optimal))
                })
                .collect();
            let ratios: Vec<f64> = results.iter().map(|&(r, _)| r).collect();
            let proven = results.iter().all(|&(_, p)| p);
            let worst = min(&ratios);
            assert!(worst >= 0.5 - 1e-9, "Theorem 2 violated: {worst} on {topo} b={b}");
            t.row(vec![
                topo.to_string(),
                b.to_string(),
                format!("{:.4}±{:.4}", mean(&ratios), std_dev(&ratios)),
                format!("{worst:.4}"),
                if proven { "yes".into() } else { "partial".into() },
            ]);
        }
    }
    t.note("paper proves worst-case 0.5; measured ratios on random instances sit far above it");
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_run_respects_bound() {
        let t = super::run(true);
        assert_eq!(t.row_count(), 15);
    }
}
