//! E7 / Figure 4 — the approximation guarantee as a function of `b_max`:
//! measured satisfaction ratio of LID against the exact optimum, plotted
//! against the analytic `¼(1 + 1/b)` (Theorem 3) and `½(1 + 1/b)`
//! (Lemma 1) curves.

use crate::{mean, min, Table};
use owp_core::run_lid;
use owp_graph::generators::complete;
use owp_matching::bounds::{modified_bound, overall_bound};
use owp_matching::exact::{optimal_satisfaction, DEFAULT_BUDGET};
use owp_matching::Problem;
use owp_simnet::SimConfig;
use rayon::prelude::*;

/// Runs the sweep over `b ∈ 1..=6` on K10 and G(12, 0.5) (quick mode stops
/// at b = 4 — the satisfaction B&B on K10 grows steeply with b in debug
/// builds).
pub fn run(quick: bool) -> Table {
    let seeds: u64 = if quick { 2 } else { 15 };
    let b_top: u32 = if quick { 4 } else { 6 };
    let mut t = Table::new(
        "E7 / Figure 4 — satisfaction ratio vs b_max (bounds ¼(1+1/b) and ½(1+1/b))",
        &["instance", "b", "¼(1+1/b)", "½(1+1/b)", "measured mean", "measured min"],
    );

    for label in ["complete(10)", "gnp(12,0.5)"] {
        for b in 1u32..=b_top {
            let ratios: Vec<f64> = (0..seeds)
                .into_par_iter()
                .filter_map(|seed| {
                    let p = match label {
                        "complete(10)" => Problem::random_over(complete(10), b, 300 + seed),
                        _ => Problem::random_gnp(12, 0.5, b, 300 + seed),
                    };
                    if p.edge_count() == 0 {
                        return None;
                    }
                    let lid = run_lid(&p, SimConfig::with_seed(seed));
                    assert!(lid.terminated);
                    let achieved = lid.matching.total_satisfaction(&p);
                    let opt = optimal_satisfaction(&p, DEFAULT_BUDGET)
                        .matching
                        .total_satisfaction(&p);
                    (opt > 0.0).then(|| achieved / opt)
                })
                .collect();
            if ratios.is_empty() {
                continue;
            }
            let worst = min(&ratios);
            assert!(worst >= overall_bound(b) - 1e-9, "{label} b={b}: {worst}");
            t.row(vec![
                label.to_string(),
                b.to_string(),
                format!("{:.4}", overall_bound(b)),
                format!("{:.4}", modified_bound(b)),
                format!("{:.4}", mean(&ratios)),
                format!("{worst:.4}"),
            ]);
        }
    }
    t.note("measured ratio stays near 1 and always above both analytic curves");
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_run() {
        let t = super::run(true);
        assert!(t.row_count() >= 6);
    }
}
