//! E16 / Table 11 — satisfaction vs stability, quantified.
//!
//! The paper's thesis is that *optimizing satisfaction* is the right target
//! for overlays because *stability* is brittle outside special cases. This
//! experiment puts numbers on both sides:
//!
//! * bipartite instances — stability is easy (Gale–Shapley always succeeds):
//!   how much total satisfaction does the stable matching give up against
//!   LID, and how many blocking pairs does LID leave?
//! * general (roommates) instances — how often does phase 1 of the stable
//!   fixtures algorithm decide the instance at all, how often do
//!   better-response dynamics converge, while LID terminates every time?

use crate::{mean, Table};
use owp_core::run_lid;
use owp_matching::stable::blocking::blocking_pairs;
use owp_matching::stable::dynamics::better_response_from_empty;
use owp_matching::stable::fixtures::phase1;
use owp_matching::stable::gale_shapley::gale_shapley;
use owp_matching::Problem;
use owp_simnet::SimConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

/// Runs both halves; returns two tables.
pub fn run(quick: bool) -> Vec<Table> {
    let seeds: u64 = if quick { 4 } else { 25 };

    // ---- Bipartite half -------------------------------------------------
    let mut t1 = Table::new(
        "E16a / Table 11 — bipartite: Gale–Shapley (stable) vs LID (satisfaction)",
        &["b", "S(GS)", "S(LID)", "LID gain %", "blocking(GS)", "blocking(LID)"],
    );
    for b in [1u32, 2, 3] {
        let rows: Vec<(f64, f64, usize, usize)> = (0..seeds)
            .into_par_iter()
            .map(|seed| {
                let mut rng = StdRng::seed_from_u64(seed * 41 + b as u64);
                let g = owp_graph::generators::random_bipartite(24, 24, 0.3, &mut rng);
                let p = Problem::random_over(g, b, seed);
                let gs = gale_shapley(&p).expect("bipartite");
                let lid = run_lid(&p, SimConfig::with_seed(seed));
                assert!(lid.terminated);
                (
                    gs.total_satisfaction(&p),
                    lid.matching.total_satisfaction(&p),
                    blocking_pairs(&p, &gs).len(),
                    blocking_pairs(&p, &lid.matching).len(),
                )
            })
            .collect();
        let s_gs: Vec<f64> = rows.iter().map(|r| r.0).collect();
        let s_lid: Vec<f64> = rows.iter().map(|r| r.1).collect();
        let blk_gs: Vec<f64> = rows.iter().map(|r| r.2 as f64).collect();
        let blk_lid: Vec<f64> = rows.iter().map(|r| r.3 as f64).collect();
        assert_eq!(mean(&blk_gs), 0.0, "GS must be stable on bipartite instances");
        t1.row(vec![
            b.to_string(),
            format!("{:.2}", mean(&s_gs)),
            format!("{:.2}", mean(&s_lid)),
            format!("{:+.1}", 100.0 * (mean(&s_lid) / mean(&s_gs) - 1.0)),
            format!("{:.1}", mean(&blk_gs)),
            format!("{:.1}", mean(&blk_lid)),
        ]);
    }
    t1.note("on bipartite instances GS and LID reach comparable satisfaction — LID's edge is the guarantee and unconditional termination, not dominance here");

    // ---- General (roommates) half ---------------------------------------
    let mut t2 = Table::new(
        "E16b / Table 11 — general instances: who can even finish?",
        &[
            "b",
            "phase1 decided %",
            "dynamics converged %",
            "LID terminated %",
            "S(LID)/S(dyn)",
        ],
    );
    for b in [1u32, 2] {
        let rows: Vec<(bool, bool, f64, f64)> = (0..seeds)
            .into_par_iter()
            .map(|seed| {
                let p = Problem::random_gnp(20, 0.4, b, 3000 + seed);
                let ph1 = phase1(&p);
                let (dyn_m, out) = better_response_from_empty(&p, 100_000);
                let lid = run_lid(&p, SimConfig::with_seed(seed));
                assert!(lid.terminated, "Lemma 5");
                (
                    ph1.decided.is_some(),
                    out.converged,
                    lid.matching.total_satisfaction(&p),
                    dyn_m.total_satisfaction(&p),
                )
            })
            .collect();
        let decided = rows.iter().filter(|r| r.0).count() as f64 / seeds as f64;
        let converged = rows.iter().filter(|r| r.1).count() as f64 / seeds as f64;
        let ratio: Vec<f64> = rows
            .iter()
            .filter(|r| r.3 > 0.0)
            .map(|r| r.2 / r.3)
            .collect();
        t2.row(vec![
            b.to_string(),
            format!("{:.0}", 100.0 * decided),
            format!("{:.0}", 100.0 * converged),
            "100".to_string(),
            format!("{:.3}", mean(&ratio)),
        ]);
    }
    t2.note("LID terminates unconditionally (Lemma 5); stability machinery is instance-dependent");

    vec![t1, t2]
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_run_gs_is_stable_and_lid_terminates() {
        let tables = super::run(true);
        assert_eq!(tables.len(), 2);
        // blocking(GS) column all zeros.
        for r in 0..tables[0].row_count() {
            assert_eq!(tables[0].cell(r, 4), "0.0");
        }
        // LID terminated column all 100.
        for r in 0..tables[1].row_count() {
            assert_eq!(tables[1].cell(r, 3), "100");
        }
    }
}
