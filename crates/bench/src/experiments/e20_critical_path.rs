//! E20 — causal critical path: how long is the longest happens-before
//! chain of an asynchronous LID run, and how does it track the synchronous
//! round complexity as `n` grows?
//!
//! Each run reconstructs the span-level happens-before DAG
//! ([`owp_telemetry::CausalDag`]) from a traced execution, certifies it
//! (the empirical Lemma 5 check: acyclic, temporally consistent), and
//! measures the critical path — the chain of message deliveries that
//! bounds the run's end-to-end latency. The headline comparison is
//! critical-path *length* (hops) against the synchronous engine's round
//! count on the same instance: the async dependency depth is the
//! machine-checked analogue of the round complexity, measured without any
//! round barrier.
//!
//! Two sweeps: Barabási–Albert (preferential attachment, heavy-tailed
//! degrees — the overlay regime the paper targets) and Erdős–Rényi at
//! matched average degree. With `--trace-out <path>` the raw event log of
//! the largest BA run is written as telemetry JSONL for `owp-inspect
//! causal`; with `--metrics-out` the run is replayed through the metrics
//! recorder and the causal audit refreshes the `lid_critical_path_len`
//! gauge.

use crate::Table;
use owp_core::{run_lid_causal, run_lid_sync};
use owp_matching::Problem;
use owp_simnet::{LatencyModel, SimConfig};
use owp_telemetry::EventLog;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One measured run on one instance.
struct RunRow {
    n: usize,
    edges: usize,
    spans: usize,
    roots: usize,
    depth: u32,
    crit_len: usize,
    crit_latency: u64,
    end_time: u64,
    sync_rounds: u64,
    max_fanout: u32,
    certified: bool,
}

fn measure(p: &Problem, seed: u64) -> (RunRow, EventLog) {
    let cfg = SimConfig::with_seed(seed).latency(LatencyModel::Uniform { lo: 1, hi: 20 });
    let (r, log, dag) = run_lid_causal(p, cfg);
    assert!(r.terminated, "LID must terminate (Lemma 5)");
    let path = dag.critical_path();
    let row = RunRow {
        n: p.node_count(),
        edges: p.edge_count(),
        spans: dag.len(),
        roots: dag.roots(),
        depth: dag.max_depth(),
        crit_len: path.len(),
        crit_latency: path.total_latency(),
        end_time: r.end_time,
        sync_rounds: run_lid_sync(p).rounds,
        max_fanout: dag.max_fanout(),
        certified: dag.is_certified(),
    };
    (row, log)
}

const HEADERS: &[&str] = &[
    "n",
    "edges",
    "spans",
    "roots",
    "dag depth",
    "crit len",
    "crit latency",
    "end time",
    "sync rounds",
    "max fanout",
    "certified",
];

fn push(t: &mut Table, row: &RunRow) {
    t.row(vec![
        row.n.to_string(),
        row.edges.to_string(),
        row.spans.to_string(),
        row.roots.to_string(),
        row.depth.to_string(),
        row.crit_len.to_string(),
        row.crit_latency.to_string(),
        row.end_time.to_string(),
        row.sync_rounds.to_string(),
        row.max_fanout.to_string(),
        if row.certified { "yes" } else { "NO" }.to_string(),
    ]);
}

fn sizes(quick: bool) -> &'static [usize] {
    if quick {
        &[64, 128, 256]
    } else {
        &[500, 1000, 2000, 5000]
    }
}

/// Runs both sweeps and returns the tables plus the raw event log of the
/// largest BA run (the `--trace-out` artifact, consumed by `owp-inspect
/// causal`).
pub fn run_with_log(quick: bool) -> (Vec<Table>, EventLog) {
    let b = 3;
    let mut ba = Table::new(
        format!("E20 — causal critical path, Barabási–Albert (m = 4, b = {b})"),
        HEADERS,
    );
    let mut headline_log = EventLog::disabled();
    for &n in sizes(quick) {
        let mut rng = StdRng::seed_from_u64(20);
        let g = owp_graph::generators::barabasi_albert(n, 4, &mut rng);
        let p = Problem::random_over(g, b, 20 + n as u64);
        let (row, log) = measure(&p, n as u64);
        push(&mut ba, &row);
        headline_log = log; // sizes are ascending: keep the largest run
    }
    ba.note(
        "crit len counts message deliveries on the longest happens-before chain; \
         it plays the role of the round count with no round barrier in sight",
    );
    ba.note("certified = happens-before DAG is acyclic and temporally consistent (Lemma 5)");

    let mut er = Table::new(
        format!("E20 — causal critical path, Erdős–Rényi (avg deg 8, b = {b})"),
        HEADERS,
    );
    for &n in sizes(quick) {
        let mut rng = StdRng::seed_from_u64(120);
        let g = owp_graph::generators::erdos_renyi(n, 8.0 / (n as f64 - 1.0), &mut rng);
        let p = Problem::random_over(g, b, 120 + n as u64);
        let (row, _) = measure(&p, 1000 + n as u64);
        push(&mut er, &row);
    }

    (vec![ba, er], headline_log)
}

/// Runs the experiment (tables only).
pub fn run(quick: bool) -> Vec<Table> {
    run_with_log(quick).0
}

/// [`run_with_log`] plus the metrics surface: the largest BA run's log is
/// replayed through the [`owp_metrics::MetricsRecorder`] and its causal
/// DAG through [`owp_metrics::Auditor::audit_causal`], which certifies
/// acyclicity online and refreshes the `lid_critical_path_len` /
/// `lid_critical_path_latency` gauges.
pub fn run_with_metrics(
    quick: bool,
    reg: &owp_metrics::MetricsRegistry,
) -> (Vec<Table>, EventLog) {
    let (tables, log) = run_with_log(quick);
    let mut rec = owp_metrics::MetricsRecorder::new(reg);
    rec.consume(&log);
    let dag = owp_telemetry::CausalDag::from_log(&log);
    let mut auditor = owp_metrics::Auditor::new(reg);
    auditor.audit_causal(&dag);
    (tables, log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use owp_telemetry::CausalDag;

    #[test]
    fn quick_run_certifies_every_instance() {
        let (tables, log) = run_with_log(true);
        assert_eq!(tables.len(), 2);
        for t in &tables {
            assert_eq!(t.row_count(), sizes(true).len());
            for r in 0..t.row_count() {
                assert_eq!(t.cell(r, 10), "yes", "uncertified row in {}", t.render());
                // The critical path is a lower bound on the dependency
                // depth and never exceeds the span count.
                let crit: usize = t.cell(r, 5).parse().unwrap();
                let depth: usize = t.cell(r, 4).parse().unwrap();
                let spans: usize = t.cell(r, 2).parse().unwrap();
                assert!(crit >= 1 && crit <= depth);
                assert!(depth < spans);
            }
        }
        // The shipped trace artifact reconstructs a certified DAG with the
        // critical path the table reported for the largest BA run.
        let dag = CausalDag::from_log(&log);
        assert!(dag.is_certified());
        let last = tables[0].row_count() - 1;
        assert_eq!(dag.critical_path_len().to_string(), tables[0].cell(last, 5));
    }

    #[test]
    fn metrics_variant_sets_the_critical_path_gauge() {
        let reg = owp_metrics::MetricsRegistry::new();
        let (tables, _log) = run_with_metrics(true, &reg);
        assert_eq!(reg.counter("audit_violations_total").get(), 0);
        let last = tables[0].row_count() - 1;
        let expect: f64 = tables[0].cell(last, 5).parse().unwrap();
        assert_eq!(reg.gauge("lid_critical_path_len").get(), expect);
        assert!(reg.gauge("lid_critical_path_latency").get() > 0.0);
        assert!(reg.counter("messages_sent_total").get() > 0);
    }
}
