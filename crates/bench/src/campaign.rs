//! Chaos-campaign orchestrator (experiment E25).
//!
//! The paper's guarantees assume reliable FIFO channels and non-faulty
//! peers. E11 showed the assumption is load-bearing; PR 7 added post-hoc
//! forensics for a *single* divergence. This module closes the remaining
//! observability gap: *which fault classes have we actually exercised, with
//! what coverage, and which certificates survived?*
//!
//! A campaign is a pure function of a [`CampaignConfig`]: a seeded stream
//! of composed [`FaultPlan`]s — healing partitions, asymmetric per-link
//! loss, message duplication, FIFO-violating reordering and crash-restart
//! of nodes mid-LID — each executed against reliable LID *and* the dynamic
//! engine, with every existing certificate checked after each plan:
//!
//! * termination + symmetric locks (the E11/E12 contract),
//! * exact LIC equivalence of the recovered matching,
//! * the Lemma 4 locally-heaviest audit ([`owp_metrics::Auditor`]),
//! * the ε-blocking-edge gauge at ε = 0,
//! * Lemma 5 causal acyclicity over the traced span DAG,
//! * the engine's `certify()` bit-identity check after churn (and, for the
//!   crash-restart class, after [`owp_engine::Engine::restart_node`]).
//!
//! The output is a deterministic machine-readable [`CampaignReport`]: a
//! per-fault-class coverage ledger (generated / executed / certified /
//! violated), violation records embedding a reproducer (campaign seed +
//! plan id + canonical plan JSON; [`replay`] re-executes it), an
//! event-count log₂ histogram, and an FNV-1a attestation digest — two runs
//! of the same seed byte-compare equal, with or without the `parallel`
//! feature (plans execute sequentially by construction).

use crate::experiments::e19_dynamic::EventGen;
use owp_core::lid_reliable::run_lid_reliable_traced;
use owp_engine::{Engine, InjectedFault};
use owp_matching::lic::{lic, SelectionPolicy};
use owp_matching::{BMatching, Problem};
use owp_metrics::{
    campaign_plans_key, campaign_violations_key, epsilon_blocking_count, Auditor,
    MetricsRegistry, CAMPAIGN_CERTIFIED_TOTAL, CAMPAIGN_CLASSES, CAMPAIGN_PLANS_TOTAL,
    CAMPAIGN_PLAN_EVENTS, CAMPAIGN_PLAN_WALL_US, CAMPAIGN_VIOLATIONS_TOTAL,
};
use owp_simnet::{FaultPlan, LatencyModel, NodeId, SimConfig};
use owp_telemetry::CausalDag;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Number of log₂ buckets in the per-plan event-count histogram.
pub const EVENT_BUCKETS: usize = 32;

/// The five fault classes a campaign cycles through (round-robin by plan
/// id, so every class gets `plans / 5` guaranteed coverage).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultClass {
    /// A partition that heals mid-run.
    HealPartition,
    /// Asymmetric per-link loss (one direction lossy, the other clean).
    AsymmetricLoss,
    /// Message duplication.
    Duplication,
    /// FIFO-violating reordering.
    Reordering,
    /// Crash-restart of a node mid-LID with engine-driven recovery.
    CrashRestart,
}

impl FaultClass {
    /// All classes, in ledger order (matches
    /// [`owp_metrics::CAMPAIGN_CLASSES`]).
    pub const ALL: [FaultClass; 5] = [
        FaultClass::HealPartition,
        FaultClass::AsymmetricLoss,
        FaultClass::Duplication,
        FaultClass::Reordering,
        FaultClass::CrashRestart,
    ];

    /// The class exercised by plan `id` (round-robin).
    pub fn of_plan(id: u64) -> FaultClass {
        FaultClass::ALL[(id % 5) as usize]
    }

    /// The stable label used in reports and metric keys.
    pub fn label(self) -> &'static str {
        CAMPAIGN_CLASSES[self.index()]
    }

    /// Position in [`FaultClass::ALL`].
    pub fn index(self) -> usize {
        match self {
            FaultClass::HealPartition => 0,
            FaultClass::AsymmetricLoss => 1,
            FaultClass::Duplication => 2,
            FaultClass::Reordering => 3,
            FaultClass::CrashRestart => 4,
        }
    }

    /// Inverse of [`FaultClass::label`].
    pub fn from_label(label: &str) -> Option<FaultClass> {
        FaultClass::ALL.into_iter().find(|c| c.label() == label)
    }
}

/// Everything a campaign run depends on. Two runs with equal configs
/// produce byte-identical reports.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CampaignConfig {
    /// Master seed: plan parameters, simulator seeds and instance pool all
    /// derive from it.
    pub seed: u64,
    /// Number of fault plans to generate and execute.
    pub plans: u64,
    /// Nodes per problem instance.
    pub n: usize,
    /// Size of the problem-instance pool (plan `id` runs against instance
    /// `id % instances`).
    pub instances: usize,
    /// Per-node quota `b`.
    pub quota: u32,
    /// Plan id to poison with a `PhantomEdge` engine fault — the
    /// intentional canary violation proving the campaign *can* detect
    /// corruption. `None` runs no injection.
    pub inject_at: Option<u64>,
}

impl CampaignConfig {
    /// The default seeded campaign: `plans` plans over a pool of eight
    /// 24-node instances, with the canary injected at the midpoint.
    pub fn new(seed: u64, plans: u64) -> Self {
        CampaignConfig {
            seed,
            plans,
            n: 24,
            instances: 8,
            quota: 3,
            inject_at: Some(plans / 2),
        }
    }
}

/// One row of the per-fault-class coverage ledger.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoverageRow {
    /// The fault class.
    pub class: FaultClass,
    /// Plans the generator assigned to this class.
    pub generated: u64,
    /// Plans actually executed (== generated unless generation failed).
    pub executed: u64,
    /// Executed plans whose every certificate held.
    pub certified: u64,
    /// Executed plans with at least one certificate violation.
    pub violated: u64,
}

/// A certificate violation with everything needed to reproduce it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ViolationRecord {
    /// The violating plan's id (with the campaign seed, a full reproducer).
    pub plan: u64,
    /// The plan's fault class.
    pub class: FaultClass,
    /// `true` iff this is the intentional `PhantomEdge` canary.
    pub injected: bool,
    /// Simulator seed the plan ran under (derived; recorded for audit).
    pub sim_seed: u64,
    /// One reason per failed certificate, in check order.
    pub reasons: Vec<String>,
    /// The plan in canonical [`FaultPlan::to_json`] form.
    pub plan_json: String,
}

/// The attested campaign report. [`CampaignReport::to_json`] is canonical:
/// same config ⇒ same bytes, certified by the embedded FNV-1a digest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CampaignReport {
    /// The config the campaign ran under (embedded so a report is a
    /// self-contained reproducer).
    pub config: CampaignConfig,
    /// Per-fault-class coverage, in [`FaultClass::ALL`] order.
    pub coverage: Vec<CoverageRow>,
    /// All violations, in plan order.
    pub violations: Vec<ViolationRecord>,
    /// log₂ histogram of simulator events (deliveries + timers) per plan.
    pub event_histogram: [u64; EVENT_BUCKETS],
    /// Total simulator events across all plans.
    pub total_events: u64,
    /// FNV-1a-64 digest (hex) over the canonical JSON with this field
    /// empty — the attestation two same-seed runs byte-compare through.
    pub digest: String,
}

impl CampaignReport {
    /// `true` iff no *genuine* violation occurred: every recorded violation
    /// is the intentional canary, and the canary (if configured) was
    /// actually detected.
    pub fn clean(&self) -> bool {
        let genuine = self.violations.iter().filter(|v| !v.injected).count();
        let canary_ok = match self.config.inject_at {
            Some(id) => self
                .violations
                .iter()
                .any(|v| v.injected && v.plan == id && !v.reasons.is_empty()),
            None => true,
        };
        genuine == 0 && canary_ok
    }

    /// Coverage row for one class.
    pub fn coverage_of(&self, class: FaultClass) -> &CoverageRow {
        &self.coverage[class.index()]
    }
}

// ---------------------------------------------------------------------------
// Plan generation
// ---------------------------------------------------------------------------

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// RNG stream for plan `id` of a campaign (pure in `(config.seed, id)`).
fn plan_rng(cfg: &CampaignConfig, id: u64) -> StdRng {
    StdRng::seed_from_u64(splitmix64(cfg.seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

/// Generates plan `id` of the campaign — a pure function of
/// `(config, id)`, which is what makes `seed + plan id` a reproducer.
/// Every plan composes its class's signature fault with a small background
/// drop probability.
pub fn generate_plan(cfg: &CampaignConfig, id: u64) -> (FaultPlan, u64) {
    let mut rng = plan_rng(cfg, id);
    let n = cfg.n as u32;
    let base_drop = rng.gen_range(0.0..0.10);
    let mut plan = FaultPlan::with_drop_probability(base_drop);
    match FaultClass::of_plan(id) {
        FaultClass::HealPartition => {
            let side_len = rng.gen_range(1..=(cfg.n / 2).max(1));
            let mut side = Vec::with_capacity(side_len);
            while side.len() < side_len {
                let v = NodeId(rng.gen_range(0..n));
                if !side.contains(&v) {
                    side.push(v);
                }
            }
            side.sort_unstable();
            let start = rng.gen_range(0u64..30);
            let heal = start + rng.gen_range(20u64..80);
            plan = plan.partition(side, start, heal);
        }
        FaultClass::AsymmetricLoss => {
            let links = rng.gen_range(1..=3);
            for _ in 0..links {
                loop {
                    let from = NodeId(rng.gen_range(0..n));
                    let to = NodeId(rng.gen_range(0..n));
                    if from == to {
                        continue;
                    }
                    if plan.link_loss.iter().any(|l| l.from == from && l.to == to) {
                        continue;
                    }
                    let p = rng.gen_range(0.3..0.9);
                    plan = plan.link_loss(from, to, p);
                    break;
                }
            }
        }
        FaultClass::Duplication => {
            plan = plan.duplicate(rng.gen_range(0.1..0.5));
        }
        FaultClass::Reordering => {
            plan = plan.reorder(rng.gen_range(0.2..0.8));
        }
        FaultClass::CrashRestart => {
            let victim = NodeId(rng.gen_range(0..n));
            let crash = rng.gen_range(5u64..40);
            let restart = crash + rng.gen_range(40u64..120);
            plan = plan.crash(victim, crash).restart(victim, restart);
        }
    }
    let sim_seed = rng.next_u64();
    (plan, sim_seed)
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

/// Retransmission interval of the reliable-LID runs.
const RETRY_INTERVAL: u64 = 20;
/// Per-plan delivery guard: a clean plan quiesces far below this; tripping
/// it is a termination violation.
const MAX_DELIVERIES: u64 = 200_000;
/// Engine churn applied per plan before certification.
const CHURN_BATCHES: usize = 2;

struct Instance {
    problem: Problem,
    lic_reference: BMatching,
    engine: Engine,
}

fn build_pool(cfg: &CampaignConfig) -> Vec<Instance> {
    (0..cfg.instances)
        .map(|j| {
            let pseed = splitmix64(cfg.seed ^ (j as u64).wrapping_mul(7919));
            let problem = Problem::random_gnp(cfg.n, 0.3, cfg.quota, pseed);
            let lic_reference = lic(&problem, SelectionPolicy::InOrder);
            let engine = Engine::builder(problem.clone()).build();
            Instance { problem, lic_reference, engine }
        })
        .collect()
}

struct PlanOutcome {
    /// One reason per failed certificate (empty = fully certified).
    reasons: Vec<String>,
    /// Simulator events (deliveries + timer firings) of the LID run.
    events: u64,
}

/// Runs one plan through reliable LID and the engine, checking every
/// certificate. Pure in its inputs — [`replay`] calls the same function.
fn execute_plan(
    inst: &Instance,
    class: FaultClass,
    plan: &FaultPlan,
    sim_seed: u64,
    inject: bool,
    auditor: &mut Auditor,
) -> PlanOutcome {
    let mut reasons = Vec::new();

    // --- LID under chaos -------------------------------------------------
    let sim_cfg = SimConfig {
        max_deliveries: MAX_DELIVERIES,
        ..SimConfig::with_seed(sim_seed)
            .latency(LatencyModel::Uniform { lo: 1, hi: 8 })
            .faults(plan.clone())
    };
    let (r, log) = run_lid_reliable_traced(&inst.problem, sim_cfg, RETRY_INTERVAL);
    let events = r.stats.delivered + r.stats.timers_fired;
    if !r.terminated {
        reasons.push("lid: run did not terminate (delivery guard tripped)".to_string());
    }
    if r.asymmetric_locks != 0 {
        reasons.push(format!("lid: {} asymmetric lock(s) survived", r.asymmetric_locks));
    }
    if !r.matching.same_edges(&inst.lic_reference) {
        reasons.push("lid: matching diverges from the LIC reference".to_string());
    }
    let matching_violations = auditor.audit_matching(&inst.problem, &r.matching);
    if matching_violations != 0 {
        reasons.push(format!(
            "audit: {matching_violations} matching invariant violation(s) (Lemma 4)"
        ));
    }
    let blocking = epsilon_blocking_count(&inst.problem, &r.matching, 0.0);
    if blocking != 0 {
        reasons.push(format!("audit: {blocking} ε-blocking edge(s) at ε=0"));
    }
    let dag = CausalDag::from_log(&log);
    let causal_violations = auditor.audit_causal(&dag);
    if causal_violations != 0 {
        reasons.push(format!(
            "audit: {causal_violations} causal-acyclicity violation(s) (Lemma 5)"
        ));
    }

    // --- Engine under churn (+ restart for the crash-restart class) ------
    let mut engine = inst.engine.clone();
    let g = &inst.problem.graph;
    let mut gen = EventGen::new(g, sim_seed);
    let batch_len = (cfg_batch_len(inst)).max(4);
    for _ in 0..CHURN_BATCHES {
        if let Err(e) = engine.apply_batch(&gen.batch(batch_len)) {
            reasons.push(format!("engine: churn batch rejected: {e:?}"));
            break;
        }
    }
    if class == FaultClass::CrashRestart {
        let victim = g.nodes().find(|&i| engine.dynamic().is_active(i));
        match victim {
            Some(v) => {
                if let Err(e) = engine.restart_node(v) {
                    reasons.push(format!("engine: restart_node rejected: {e:?}"));
                }
            }
            None => reasons.push("engine: no active node left to restart".to_string()),
        }
    }
    if inject {
        let dp = engine.dynamic();
        let edge = g
            .edges()
            .find(|&ed| dp.is_alive(ed) && !engine.matching().contains(ed));
        match edge {
            Some(edge) => {
                engine.inject_fault(InjectedFault::PhantomEdge { edge });
                match engine.certify() {
                    Err(e) => reasons.push(format!("injected: certify failed as designed: {e}")),
                    Ok(()) => {
                        reasons.push("injected: PhantomEdge NOT detected by certify".to_string())
                    }
                }
            }
            None => reasons.push("injected: no alive unselected edge to poison".to_string()),
        }
    } else {
        if let Err(e) = engine.certify() {
            reasons.push(format!("engine: certify failed after churn: {e}"));
        }
        let engine_violations = auditor.audit_engine(&engine);
        if engine_violations != 0 {
            reasons.push(format!("audit: {engine_violations} engine invariant violation(s)"));
        }
    }

    PlanOutcome { reasons, events }
}

fn cfg_batch_len(inst: &Instance) -> usize {
    inst.problem.graph.node_count() / 6
}

/// Runs a full campaign. Plans execute sequentially (determinism by
/// construction — the report is byte-identical with and without the
/// `parallel` feature).
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignReport {
    run_campaign_with_metrics(cfg, None)
}

/// [`run_campaign`] that additionally feeds the `campaign_*` ledger of a
/// [`MetricsRegistry`]: per-class plan/violation counters plus wall-time
/// and event-count histograms. Wall times live only in the registry — the
/// attested report contains exclusively deterministic data.
pub fn run_campaign_with_metrics(
    cfg: &CampaignConfig,
    reg: Option<&MetricsRegistry>,
) -> CampaignReport {
    let pool = build_pool(cfg);
    let own_reg;
    let audit_reg = match reg {
        Some(r) => r,
        None => {
            own_reg = MetricsRegistry::new();
            &own_reg
        }
    };
    if let Some(r) = reg {
        owp_metrics::register_campaign_metrics(r);
    }
    let mut auditor = Auditor::new(audit_reg);

    let mut coverage: Vec<CoverageRow> = FaultClass::ALL
        .into_iter()
        .map(|class| CoverageRow { class, generated: 0, executed: 0, certified: 0, violated: 0 })
        .collect();
    let mut violations = Vec::new();
    let mut event_histogram = [0u64; EVENT_BUCKETS];
    let mut total_events = 0u64;

    for id in 0..cfg.plans {
        let class = FaultClass::of_plan(id);
        let (plan, sim_seed) = generate_plan(cfg, id);
        coverage[class.index()].generated += 1;
        if let Err(e) = plan.validate() {
            violations.push(ViolationRecord {
                plan: id,
                class,
                injected: false,
                sim_seed,
                reasons: vec![format!("generator: invalid plan: {e}")],
                plan_json: plan.to_json(),
            });
            coverage[class.index()].violated += 1;
            continue;
        }
        let inst = &pool[(id % cfg.instances as u64) as usize];
        let inject = cfg.inject_at == Some(id);
        let started = std::time::Instant::now();
        let outcome = execute_plan(inst, class, &plan, sim_seed, inject, &mut auditor);
        let wall_us = started.elapsed().as_micros() as u64;

        coverage[class.index()].executed += 1;
        total_events += outcome.events;
        event_histogram[event_bucket(outcome.events)] += 1;
        let violated = if inject {
            // The canary counts as violated coverage iff something was
            // reported (detection failure is itself a reason, so the
            // injected plan always lands here).
            !outcome.reasons.is_empty()
        } else {
            !outcome.reasons.is_empty()
        };
        if violated {
            coverage[class.index()].violated += 1;
            violations.push(ViolationRecord {
                plan: id,
                class,
                injected: inject,
                sim_seed,
                reasons: outcome.reasons,
                plan_json: plan.to_json(),
            });
        } else {
            coverage[class.index()].certified += 1;
        }

        if let Some(r) = reg {
            r.counter(CAMPAIGN_PLANS_TOTAL).inc();
            r.counter(campaign_plans_key(class.label()).expect("known class")).inc();
            if violated {
                r.counter(CAMPAIGN_VIOLATIONS_TOTAL).inc();
                r.counter(campaign_violations_key(class.label()).expect("known class")).inc();
            } else {
                r.counter(CAMPAIGN_CERTIFIED_TOTAL).inc();
            }
            r.histogram(CAMPAIGN_PLAN_WALL_US).observe(wall_us);
            r.histogram(CAMPAIGN_PLAN_EVENTS).observe(outcome.events);
        }
    }

    let mut report = CampaignReport {
        config: cfg.clone(),
        coverage,
        violations,
        event_histogram,
        total_events,
        digest: String::new(),
    };
    report.digest = fnv1a64_hex(report.to_json().as_bytes());
    report
}

fn event_bucket(events: u64) -> usize {
    match events {
        0 => 0,
        e => ((63 - e.leading_zeros() as usize) + 1).min(EVENT_BUCKETS - 1),
    }
}

// ---------------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------------

/// Outcome of replaying one plan of a report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplayOutcome {
    /// Reasons produced by the fresh execution (empty = certified).
    pub reasons: Vec<String>,
    /// Reasons the report recorded for this plan (empty = was certified).
    pub recorded: Vec<String>,
    /// `true` iff the replay reproduced the recorded outcome exactly.
    pub matches: bool,
}

/// Re-executes plan `plan_id` of `report` from its embedded config and
/// compares the outcome with what the report recorded. The reproducer
/// contract: same seed + plan id ⇒ same reasons, byte for byte.
pub fn replay(report: &CampaignReport, plan_id: u64) -> Result<ReplayOutcome, String> {
    let cfg = &report.config;
    if plan_id >= cfg.plans {
        return Err(format!(
            "plan {plan_id} out of range (campaign ran {} plans)",
            cfg.plans
        ));
    }
    let class = FaultClass::of_plan(plan_id);
    let (plan, sim_seed) = generate_plan(cfg, plan_id);
    // Cross-check the derived plan against an embedded reproducer, if the
    // plan was recorded as a violation: a mismatch means the report does
    // not belong to this generator version.
    let recorded = report.violations.iter().find(|v| v.plan == plan_id);
    if let Some(v) = recorded {
        if v.plan_json != plan.to_json() {
            return Err(format!(
                "plan {plan_id}: embedded reproducer does not match the derived plan \
                 (report generated by an incompatible version?)"
            ));
        }
        if v.sim_seed != sim_seed {
            return Err(format!("plan {plan_id}: derived sim seed mismatch"));
        }
    }
    let pool = build_pool(cfg);
    let inst = &pool[(plan_id % cfg.instances as u64) as usize];
    let reg = MetricsRegistry::new();
    let mut auditor = Auditor::new(&reg);
    let inject = cfg.inject_at == Some(plan_id);
    let outcome = execute_plan(inst, class, &plan, sim_seed, inject, &mut auditor);
    let recorded_reasons = recorded.map(|v| v.reasons.clone()).unwrap_or_default();
    let matches = outcome.reasons == recorded_reasons;
    Ok(ReplayOutcome { reasons: outcome.reasons, recorded: recorded_reasons, matches })
}

// ---------------------------------------------------------------------------
// Attestation + canonical JSON
// ---------------------------------------------------------------------------

/// FNV-1a 64-bit digest, rendered as 16 lowercase hex digits.
pub fn fnv1a64_hex(bytes: &[u8]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

impl CampaignReport {
    /// Canonical single-line JSON. The digest field participates as the
    /// empty string while the digest itself is computed.
    pub fn to_json(&self) -> String {
        let c = &self.config;
        let mut s = String::with_capacity(4096);
        s.push_str(&format!(
            "{{\"campaign\":{{\"seed\":{},\"plans\":{},\"n\":{},\"instances\":{},\"quota\":{},\"inject_at\":{}}}",
            c.seed,
            c.plans,
            c.n,
            c.instances,
            c.quota,
            match c.inject_at {
                Some(id) => id.to_string(),
                None => "null".to_string(),
            }
        ));
        s.push_str(",\"coverage\":[");
        for (i, row) in self.coverage.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"class\":\"{}\",\"generated\":{},\"executed\":{},\"certified\":{},\"violated\":{}}}",
                row.class.label(),
                row.generated,
                row.executed,
                row.certified,
                row.violated
            ));
        }
        s.push_str("],\"violations\":[");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"plan\":{},\"class\":\"{}\",\"injected\":{},\"sim_seed\":{},\"reasons\":[",
                v.plan,
                v.class.label(),
                v.injected,
                v.sim_seed
            ));
            for (j, reason) in v.reasons.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str(&format!("\"{}\"", esc(reason)));
            }
            s.push_str(&format!("],\"plan_json\":\"{}\"}}", esc(&v.plan_json)));
        }
        s.push_str("],\"event_histogram\":[");
        for (i, &count) in self.event_histogram.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&count.to_string());
        }
        s.push_str(&format!(
            "],\"total_events\":{},\"digest\":\"{}\"}}",
            self.total_events, self.digest
        ));
        s
    }

    /// Recomputes the attestation digest from the canonical JSON and
    /// compares it with the embedded one.
    pub fn verify_digest(&self) -> Result<(), String> {
        let mut blank = self.clone();
        blank.digest = String::new();
        let expect = fnv1a64_hex(blank.to_json().as_bytes());
        if expect == self.digest {
            Ok(())
        } else {
            Err(format!(
                "digest mismatch: report says {}, canonical bytes give {expect}",
                self.digest
            ))
        }
    }

    /// Parses the canonical JSON produced by [`CampaignReport::to_json`]
    /// (hand-rolled — the vendored serde is a derive marker only). The
    /// digest is *not* verified here; call
    /// [`CampaignReport::verify_digest`] for attestation.
    pub fn parse(text: &str) -> Result<CampaignReport, String> {
        let mut p = Cur::new(text);
        p.expect('{')?;
        let mut config = CampaignConfig {
            seed: 0,
            plans: 0,
            n: 0,
            instances: 0,
            quota: 0,
            inject_at: None,
        };
        let mut coverage = Vec::new();
        let mut violations = Vec::new();
        let mut event_histogram = [0u64; EVENT_BUCKETS];
        let mut total_events = 0u64;
        let mut digest = String::new();
        loop {
            p.skip_ws();
            if p.eat('}') {
                break;
            }
            let key = p.string()?;
            p.expect(':')?;
            match key.as_str() {
                "campaign" => {
                    p.expect('{')?;
                    loop {
                        p.skip_ws();
                        if p.eat('}') {
                            break;
                        }
                        let k = p.string()?;
                        p.expect(':')?;
                        match k.as_str() {
                            "seed" => config.seed = p.u64()?,
                            "plans" => config.plans = p.u64()?,
                            "n" => config.n = p.u64()? as usize,
                            "instances" => config.instances = p.u64()? as usize,
                            "quota" => config.quota = p.u64()? as u32,
                            "inject_at" => {
                                if p.eat_word("null") {
                                    config.inject_at = None;
                                } else {
                                    config.inject_at = Some(p.u64()?);
                                }
                            }
                            other => return Err(format!("unknown campaign key {other:?}")),
                        }
                        p.skip_ws();
                        if !p.eat(',') {
                            p.expect('}')?;
                            break;
                        }
                    }
                }
                "coverage" => {
                    p.expect('[')?;
                    loop {
                        p.skip_ws();
                        if p.eat(']') {
                            break;
                        }
                        let mut row = CoverageRow {
                            class: FaultClass::HealPartition,
                            generated: 0,
                            executed: 0,
                            certified: 0,
                            violated: 0,
                        };
                        p.expect('{')?;
                        loop {
                            p.skip_ws();
                            if p.eat('}') {
                                break;
                            }
                            let k = p.string()?;
                            p.expect(':')?;
                            match k.as_str() {
                                "class" => {
                                    let label = p.string()?;
                                    row.class = FaultClass::from_label(&label)
                                        .ok_or_else(|| format!("unknown class {label:?}"))?;
                                }
                                "generated" => row.generated = p.u64()?,
                                "executed" => row.executed = p.u64()?,
                                "certified" => row.certified = p.u64()?,
                                "violated" => row.violated = p.u64()?,
                                other => return Err(format!("unknown coverage key {other:?}")),
                            }
                            p.skip_ws();
                            if !p.eat(',') {
                                p.expect('}')?;
                                break;
                            }
                        }
                        coverage.push(row);
                        p.skip_ws();
                        if !p.eat(',') {
                            p.expect(']')?;
                            break;
                        }
                    }
                }
                "violations" => {
                    p.expect('[')?;
                    loop {
                        p.skip_ws();
                        if p.eat(']') {
                            break;
                        }
                        let mut v = ViolationRecord {
                            plan: 0,
                            class: FaultClass::HealPartition,
                            injected: false,
                            sim_seed: 0,
                            reasons: Vec::new(),
                            plan_json: String::new(),
                        };
                        p.expect('{')?;
                        loop {
                            p.skip_ws();
                            if p.eat('}') {
                                break;
                            }
                            let k = p.string()?;
                            p.expect(':')?;
                            match k.as_str() {
                                "plan" => v.plan = p.u64()?,
                                "class" => {
                                    let label = p.string()?;
                                    v.class = FaultClass::from_label(&label)
                                        .ok_or_else(|| format!("unknown class {label:?}"))?;
                                }
                                "injected" => v.injected = p.bool()?,
                                "sim_seed" => v.sim_seed = p.u64()?,
                                "reasons" => {
                                    p.expect('[')?;
                                    loop {
                                        p.skip_ws();
                                        if p.eat(']') {
                                            break;
                                        }
                                        v.reasons.push(p.string()?);
                                        p.skip_ws();
                                        if !p.eat(',') {
                                            p.expect(']')?;
                                            break;
                                        }
                                    }
                                }
                                "plan_json" => v.plan_json = p.string()?,
                                other => return Err(format!("unknown violation key {other:?}")),
                            }
                            p.skip_ws();
                            if !p.eat(',') {
                                p.expect('}')?;
                                break;
                            }
                        }
                        violations.push(v);
                        p.skip_ws();
                        if !p.eat(',') {
                            p.expect(']')?;
                            break;
                        }
                    }
                }
                "event_histogram" => {
                    p.expect('[')?;
                    let mut i = 0;
                    loop {
                        p.skip_ws();
                        if p.eat(']') {
                            break;
                        }
                        if i >= EVENT_BUCKETS {
                            return Err("event_histogram has too many buckets".to_string());
                        }
                        event_histogram[i] = p.u64()?;
                        i += 1;
                        p.skip_ws();
                        if !p.eat(',') {
                            p.expect(']')?;
                            break;
                        }
                    }
                }
                "total_events" => total_events = p.u64()?,
                "digest" => digest = p.string()?,
                other => return Err(format!("unknown report key {other:?}")),
            }
            p.skip_ws();
            if !p.eat(',') {
                p.expect('}')?;
                break;
            }
        }
        p.skip_ws();
        if !p.at_end() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        if coverage.len() != FaultClass::ALL.len() {
            return Err(format!(
                "coverage ledger has {} rows, expected {}",
                coverage.len(),
                FaultClass::ALL.len()
            ));
        }
        Ok(CampaignReport {
            config,
            coverage,
            violations,
            event_histogram,
            total_events,
            digest,
        })
    }
}

/// Minimal cursor over canonical JSON text (numbers, escaped strings,
/// punctuation) — sibling of the one in `owp_simnet::faults`, kept local
/// because the escape vocabulary differs (reasons may contain newlines).
struct Cur<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn new(text: &'a str) -> Self {
        Cur { bytes: text.as_bytes(), pos: 0 }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: char) -> bool {
        self.skip_ws();
        if self.pos < self.bytes.len() && self.bytes[self.pos] == c as u8 {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_word(&mut self, w: &str) -> bool {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(w.as_bytes()) {
            self.pos += w.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(format!("expected {c:?} at byte {}", self.pos))
        }
    }

    fn bool(&mut self) -> Result<bool, String> {
        if self.eat_word("true") {
            Ok(true)
        } else if self.eat_word("false") {
            Ok(false)
        } else {
            Err(format!("expected bool at byte {}", self.pos))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                _ => {
                    let start = self.pos;
                    while self.pos < self.bytes.len()
                        && self.bytes[self.pos] != b'"'
                        && self.bytes[self.pos] != b'\\'
                    {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| "invalid utf-8 in string".to_string())?,
                    );
                }
            }
        }
        Err("unterminated string".to_string())
    }

    /// Exact unsigned integer — `f64` round-tripping would corrupt 64-bit
    /// seeds, so every numeric report field parses through here.
    fn u64(&mut self) -> Result<u64, String> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .ok_or_else(|| format!("bad integer at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(seed: u64) -> CampaignConfig {
        CampaignConfig {
            seed,
            plans: 15,
            n: 14,
            instances: 3,
            quota: 2,
            inject_at: Some(7),
        }
    }

    #[test]
    fn small_campaign_covers_every_class() {
        let report = run_campaign(&small_cfg(42));
        for class in FaultClass::ALL {
            let row = report.coverage_of(class);
            assert_eq!(row.generated, 3, "{}", class.label());
            assert_eq!(row.executed, 3, "{}", class.label());
            assert!(row.certified > 0, "{} has no certified plans", class.label());
        }
        // The canary (plan 7, asym_loss class) is the only violation.
        assert!(report.clean(), "violations: {:?}", report.violations);
        let canary: Vec<_> = report.violations.iter().filter(|v| v.injected).collect();
        assert_eq!(canary.len(), 1);
        assert_eq!(canary[0].plan, 7);
        assert!(
            canary[0].reasons[0].contains("certify failed as designed"),
            "{:?}",
            canary[0].reasons
        );
        assert!(report.verify_digest().is_ok());
        assert!(report.total_events > 0);
        assert!(report.event_histogram.iter().sum::<u64>() == 15);
    }

    #[test]
    fn same_seed_reports_are_byte_identical() {
        let a = run_campaign(&small_cfg(7)).to_json();
        let b = run_campaign(&small_cfg(7)).to_json();
        assert_eq!(a, b);
        let c = run_campaign(&small_cfg(8)).to_json();
        assert_ne!(a, c, "different seeds must differ somewhere");
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = run_campaign(&small_cfg(42));
        let json = report.to_json();
        let parsed = CampaignReport::parse(&json).expect("parses");
        assert_eq!(parsed, report);
        assert_eq!(parsed.to_json(), json, "canonical: reparse preserves bytes");
        assert!(parsed.verify_digest().is_ok());
        // Tampering breaks the attestation.
        let tampered = json.replace("\"total_events\":", "\"total_events\":1");
        if let Ok(bad) = CampaignReport::parse(&tampered) {
            assert!(bad.verify_digest().is_err());
        }
    }

    #[test]
    fn replay_reproduces_the_canary_violation() {
        let report = run_campaign(&small_cfg(42));
        let out = replay(&report, 7).expect("replayable");
        assert!(out.matches, "replay: {:?} vs {:?}", out.reasons, out.recorded);
        assert!(!out.reasons.is_empty());
        // A certified plan replays clean.
        let out = replay(&report, 0).expect("replayable");
        assert!(out.matches);
        assert!(out.reasons.is_empty());
        // Out-of-range ids are a structured error.
        assert!(replay(&report, 99).is_err());
    }

    #[test]
    fn metrics_ledger_matches_the_report() {
        let reg = MetricsRegistry::new();
        let report = run_campaign_with_metrics(&small_cfg(42), Some(&reg));
        let snap = reg.snapshot();
        let json = snap.to_json();
        assert!(json.contains("campaign_plans_total"));
        for class in FaultClass::ALL {
            assert!(json.contains(campaign_plans_key(class.label()).unwrap()));
        }
        // Metrics do not perturb the attested bytes.
        assert_eq!(report.to_json(), run_campaign(&small_cfg(42)).to_json());
    }

    #[test]
    fn plan_generation_is_pure() {
        let cfg = small_cfg(3);
        for id in 0..15 {
            let (p1, s1) = generate_plan(&cfg, id);
            let (p2, s2) = generate_plan(&cfg, id);
            assert_eq!(p1, p2);
            assert_eq!(s1, s2);
            assert!(p1.validate().is_ok(), "plan {id}: {:?}", p1.validate());
            // The class signature fault is present.
            match FaultClass::of_plan(id) {
                FaultClass::HealPartition => assert!(!p1.partitions.is_empty()),
                FaultClass::AsymmetricLoss => assert!(!p1.link_loss.is_empty()),
                FaultClass::Duplication => assert!(p1.duplicate_probability > 0.0),
                FaultClass::Reordering => assert!(p1.reorder_probability > 0.0),
                FaultClass::CrashRestart => {
                    assert!(!p1.crashes.is_empty() && !p1.restarts.is_empty())
                }
            }
        }
    }
}
