//! `owp-inspect` — offline post-processing of run artifacts.
//!
//! ```text
//! owp-inspect trace <series.jsonl|series.csv>   per-phase convergence summary
//! owp-inspect metrics <snapshot.json|.prom>     metrics summary + audit report
//! owp-inspect causal <events.jsonl> [--top <k>] [--dot <path>]
//!                                               happens-before DAG summary
//! owp-inspect forensics <bundle.json>           post-mortem bundle: summarize,
//!                                               re-execute, verify
//! owp-inspect wal <matchd.wal> [--snapshot <snapshot.bin>] [--universe <spec>]
//!                                               matchd WAL: summarize, replay,
//!                                               certify
//! owp-inspect ops <host:port>                   live matchd admin plane: status,
//!                                               readiness, worst request spans
//! owp-inspect campaign <report.json> [--replay <plan>]
//!                                               chaos-campaign report: coverage
//!                                               ledger, attestation, verdict
//! ```
//!
//! **Exit-code contract, uniform across every subcommand:**
//!
//! * `0` — the artifact is clean (no violations, certificate holds,
//!   reproducer does not fail);
//! * `1` — the artifact records or reproduces a failure (audit
//!   violations, a failed Lemma 5 certificate, a forensic reproducer
//!   that still diverges);
//! * `2` — usage error: unknown flags/paths, unreadable or unparseable
//!   input, a bundle that cannot be re-executed.
//!
//! `trace` consumes the convergence series written by
//! `experiments e18 --trace-out <path>` (JSONL schema of
//! `owp_telemetry::series`; `.csv` files written via `to_csv` parse too)
//! and splits the trajectory into its two phases — *matching growth* up to
//! the stabilization round, then the *termination-detection tail* — with
//! per-phase round, edge and message accounting.
//!
//! `metrics` consumes a snapshot written by `experiments --metrics-out`
//! (JSON, or Prometheus text for `.prom` paths), prints every family with
//! interpolated histogram quantiles, and reports the audit verdict: exit
//! status 1 if the snapshot records any invariant violation, 0 otherwise.
//!
//! `causal` consumes a telemetry event log with span records (written by
//! `experiments e20 --trace-out <path>`, or any `EventLog::to_jsonl`
//! dump), reconstructs the happens-before DAG, verifies the empirical
//! Lemma 5 certificate (acyclicity + temporal consistency), and prints
//! the span/root/depth accounting, the top-k critical paths hop by hop,
//! the per-kind causation fan-out and the edge-lifecycle tally. With
//! `--dot <path>` a Graphviz digraph of the critical paths is written.
//! Exit status 1 if the certificate fails, 0 otherwise.
//!
//! `forensics` consumes a post-mortem bundle written by the engine's
//! forensic capture (`owp_engine::ForensicBundle`, e.g. via
//! `experiments e22 --forensics-out <dir>`): prints the provenance,
//! trigger, membership and flight-ring summary plus the shrunk
//! reproducer, then restores the bundled checkpoint and **re-executes**
//! the reproducer against a fresh engine. Exit status 1 iff the
//! reproducer still fails certification.
//!
//! `wal` consumes a matchd write-ahead log (`owp_matchd::wal` format):
//! prints the record count, epoch range, per-record CRC verdict and any
//! truncated torn-tail bytes. With `--snapshot` it restores the matching
//! snapshot, replays every WAL record past the snapshot's epoch, and
//! **certifies** the rebuilt engine (bit-identity with a from-scratch
//! `lic()`) — the same recovery path the daemon itself runs before
//! serving. `--universe <spec>` (e.g. `ba:2000,3,2,42`) replays from a
//! fresh universe instead, for WALs that predate any snapshot. Exit
//! status 1 if the log has torn/corrupt bytes or the replay fails to
//! certify, 0 when clean.
//!
//! `campaign` consumes an attested chaos-campaign report (written by
//! `experiments e25 --campaign-out <path>`, canonical JSON of
//! `owp_bench::campaign::CampaignReport`): recomputes and checks the
//! FNV-1a attestation digest, prints the per-fault-class coverage ledger
//! with a coverage verdict (every class executed and certified at least
//! once), and lists every violation record with its reproducer
//! coordinates. Exit status 1 if the digest does not attest, a fault
//! class has zero coverage, or any *genuine* (non-injected) violation is
//! recorded — the intentional PhantomEdge canary is the detector working
//! as designed and stays exit 0. With `--replay <plan>` the plan is
//! re-derived from the embedded config and re-executed: exit 0 iff the
//! fresh outcome matches the recorded one exactly.
//!
//! `ops` is the one *live* subcommand: it connects to a running matchd's
//! admin listener (`--ops-addr`), fetches `/status` and `/readyz`, and
//! prints the daemon's health — epoch, ΣS, queue, WAL/snapshot state,
//! auditor verdict and the worst request spans. Exit status 0 when the
//! daemon is ready and the continuous auditor is clean, 1 when it is
//! unready or has recorded violations, 2 when the endpoint is
//! unreachable.
//!
//! Reports are accumulated and written in one shot with write errors
//! ignored, so piping into `head` never aborts the tool.

use owp_metrics::MetricsSnapshot;
use owp_telemetry::{CausalDag, ConvergenceSample, ConvergenceSeries, EventLog};
use std::fmt::Write as _;
use std::io::Write as _;

fn fail(msg: &str) -> ! {
    eprintln!("owp-inspect: {msg}");
    std::process::exit(2);
}

fn emit(out: &str) {
    let _ = std::io::stdout().write_all(out.as_bytes());
}

fn phase_row(out: &mut String, label: &str, from: &ConvergenceSample, to: &ConvergenceSample) {
    let rounds = to.round - from.round;
    let _ = writeln!(
        out,
        "  {label:<22} rounds {:>4}..{:<4} ({rounds:>4})  edges +{:<6} msgs +{:<8} term {:>5.1}% -> {:>5.1}%",
        from.round,
        to.round,
        to.matched_edges.saturating_sub(from.matched_edges),
        to.messages_sent.saturating_sub(from.messages_sent),
        100.0 * from.terminated_fraction,
        100.0 * to.terminated_fraction,
    );
}

fn inspect_trace(path: &str) {
    let doc = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    let series = if path.ends_with(".csv") {
        ConvergenceSeries::parse_csv(&doc)
    } else {
        ConvergenceSeries::parse_jsonl(&doc)
    }
    .unwrap_or_else(|e| fail(&format!("cannot parse {path}: {e}")));

    let mut out = String::new();
    let Some(last) = series.last() else {
        emit(&format!("{path}: empty series\n"));
        return;
    };
    let first = &series.samples()[0];
    let stable = series.stabilization_round().unwrap_or(last.round);

    let _ = writeln!(
        out,
        "{path}: {} samples, rounds {}..{}",
        series.len(),
        first.round,
        last.round
    );
    let _ = writeln!(
        out,
        "  final: {} edges, weight {:.4}, ΣS {:.4}, {} msgs, {:.1}% terminated",
        last.matched_edges,
        last.total_weight,
        last.satisfaction_total,
        last.messages_sent,
        100.0 * last.terminated_fraction
    );
    let _ = writeln!(out, "  matching stable from round {stable}");

    // Phase split: growth until the matching stops changing, then pure
    // termination detection.
    let split = series
        .samples()
        .iter()
        .position(|s| s.round >= stable)
        .unwrap_or(series.len() - 1);
    let stable_sample = &series.samples()[split];
    out.push_str("phases:\n");
    phase_row(&mut out, "matching growth", first, stable_sample);
    phase_row(&mut out, "termination detection", stable_sample, last);

    let peak_in_flight = series.samples().iter().map(|s| s.in_flight).max().unwrap_or(0);
    let tail_msgs = last.messages_sent.saturating_sub(stable_sample.messages_sent);
    let tail_pct = if last.messages_sent > 0 {
        100.0 * tail_msgs as f64 / last.messages_sent as f64
    } else {
        0.0
    };
    let _ = writeln!(
        out,
        "  peak in-flight {peak_in_flight}; {tail_pct:.1}% of messages spent after stabilization"
    );
    emit(&out);
}

fn inspect_metrics(path: &str) {
    let doc = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    let snap = if path.ends_with(".prom") {
        MetricsSnapshot::parse_prometheus(&doc)
    } else {
        MetricsSnapshot::parse_json(&doc)
    }
    .unwrap_or_else(|e| fail(&format!("cannot parse {path}: {e}")));

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{path}: {} counters, {} gauges, {} histograms",
        snap.counters.len(),
        snap.gauges.len(),
        snap.histograms.len()
    );
    for (name, v) in &snap.counters {
        let _ = writeln!(out, "  counter   {name:<34} {v}");
    }
    for (name, v) in &snap.gauges {
        let _ = writeln!(out, "  gauge     {name:<34} {v:.4}");
    }
    for (name, h) in &snap.histograms {
        let _ = writeln!(
            out,
            "  histogram {name:<34} n={} mean={:.1} p50~{:.1} p95~{:.1} p99~{:.1}",
            h.count,
            h.mean(),
            h.quantile_interpolated(0.5).unwrap_or(0.0),
            h.quantile_interpolated(0.95).unwrap_or(0.0),
            h.quantile_interpolated(0.99).unwrap_or(0.0),
        );
    }

    // The sharded engine's health lines (E21): partition shape, phase-2
    // merge load, and the steady-state allocation rate — 0 is the
    // DESIGN.md §11 zero-allocation contract, anything else is a
    // regression worth reading before the wall times move.
    let gauge = |key: &str| {
        snap.gauges.iter().find(|(name, _)| name == key).map(|&(_, v)| v)
    };
    if gauge("engine_shards").is_some()
        || gauge(owp_metrics::ALLOCATIONS_PER_BATCH).is_some()
        || gauge(owp_metrics::PHASE2_ROUNDS).is_some()
    {
        out.push_str("engine:\n");
        if let Some(shards) = gauge("engine_shards") {
            let _ = writeln!(
                out,
                "  sharded repair: {shards:.0} shards, {:.0} boundary edges ({:.2}% of m), \
                 phase-2 merge evaluated {:.0} edges last batch",
                gauge("engine_boundary_edges").unwrap_or(0.0),
                100.0 * gauge("engine_boundary_fraction").unwrap_or(0.0),
                gauge("engine_boundary_evaluated").unwrap_or(0.0),
            );
        }
        if let Some(rounds) = gauge(owp_metrics::PHASE2_ROUNDS) {
            let _ = writeln!(
                out,
                "  two-phase repair quiesced in {rounds:.0} round(s) last batch"
            );
        }
        match gauge(owp_metrics::ALLOCATIONS_PER_BATCH) {
            Some(rate) if rate == 0.0 => out.push_str(
                "  steady-state batches allocation-free (engine_allocations_per_batch = 0)\n",
            ),
            Some(rate) => {
                let _ = writeln!(
                    out,
                    "  WARNING — engine_allocations_per_batch = {rate:.1}: the zero-allocation \
                     steady-state contract looks broken"
                );
            }
            None => {}
        }
    }

    // The flight recorder is its own subsystem (always-on black box,
    // DESIGN.md §12), so its health prints whenever the snapshot carries
    // it — an un-sharded engine records flights too.
    if let Some(dropped) = gauge(owp_metrics::RECORDER_DROPPED) {
        out.push_str("recorder:\n");
        let _ = writeln!(
            out,
            "  flight ring {:.0}% full, {dropped:.0} event(s) overwritten",
            100.0 * gauge(owp_metrics::RECORDER_OCCUPANCY).unwrap_or(0.0),
        );
    }

    let counter = |key: &str| {
        snap.counters.iter().find(|(name, _)| name == key).map(|&(_, v)| v)
    };
    let hist = |key: &str| snap.histograms.iter().find(|(name, _)| name == key).map(|(_, h)| h);

    // The daemon's ingest/durability/ops health (DESIGN.md §13-§14): a
    // snapshot scraped from matchd's `/metrics` summarizes here without
    // the reader pattern-matching forty raw families.
    if gauge(owp_metrics::MATCHD_WAL_BYTES).is_some()
        || gauge(owp_metrics::MATCHD_READY).is_some()
    {
        out.push_str("matchd:\n");
        if let Some(ready) = gauge(owp_metrics::MATCHD_READY) {
            let clean = gauge(owp_metrics::MATCHD_AUDIT_CLEAN).unwrap_or(1.0) != 0.0;
            let _ = writeln!(
                out,
                "  {} | auditor {} ({} pass(es), {} failure(s), last audited epoch {:.0})",
                if ready != 0.0 { "READY" } else { "NOT READY" },
                if clean { "clean" } else { "VIOLATION LATCHED" },
                counter(owp_metrics::MATCHD_AUDIT_PASSES).unwrap_or(0),
                counter(owp_metrics::MATCHD_AUDIT_FAILURES).unwrap_or(0),
                gauge(owp_metrics::MATCHD_AUDIT_LAST_EPOCH).unwrap_or(0.0),
            );
            if let Some(cost) = gauge(owp_metrics::MATCHD_AUDIT_COST_US) {
                let _ = writeln!(
                    out,
                    "  last audit cycle {cost:.0} us recurring (duty-cycle cap schedules \
                     the next one >= 99x that out)",
                );
            }
        }
        let _ = writeln!(
            out,
            "  queue depth {:.0}, {} admission reject(s) (backpressure)",
            gauge(owp_metrics::MATCHD_QUEUE_DEPTH).unwrap_or(0.0),
            counter(owp_metrics::MATCHD_ADMISSION_REJECTS).unwrap_or(0),
        );
        let _ = writeln!(
            out,
            "  wal {:.0} byte(s) / {:.0} record(s) since snapshot epoch {:.0}",
            gauge(owp_metrics::MATCHD_WAL_BYTES).unwrap_or(0.0),
            gauge(owp_metrics::MATCHD_WAL_RECORDS).unwrap_or(0.0),
            gauge(owp_metrics::MATCHD_SNAPSHOT_EPOCH).unwrap_or(0.0),
        );
        let _ = writeln!(
            out,
            "  {:.0} connection(s) open, {} total, {} request(s), {} ops scrape(s), {} bundle(s) spooled",
            gauge(owp_metrics::MATCHD_CONNECTIONS).unwrap_or(0.0),
            counter(owp_metrics::MATCHD_CONNECTIONS_TOTAL).unwrap_or(0),
            counter(owp_metrics::MATCHD_REQUESTS_TOTAL).unwrap_or(0),
            counter(owp_metrics::MATCHD_OPS_REQUESTS).unwrap_or(0),
            counter(owp_metrics::MATCHD_BUNDLES_SPOOLED).unwrap_or(0),
        );
        for (label, key) in [
            ("queue", owp_metrics::MATCHD_SPAN_QUEUE_US),
            ("apply", owp_metrics::MATCHD_SPAN_APPLY_US),
            ("ack", owp_metrics::MATCHD_SPAN_ACK_US),
        ] {
            if let Some(h) = hist(key) {
                if h.count > 0 {
                    let _ = writeln!(
                        out,
                        "  span {label:<5} n={} mean={:.1}us p99~{:.1}us",
                        h.count,
                        h.mean(),
                        h.quantile_interpolated(0.99).unwrap_or(0.0),
                    );
                }
            }
        }
    }

    // The chaos-campaign ledger (E25): per-fault-class coverage counters
    // written by `experiments e25 --metrics-out`.
    if let Some(total) = counter(owp_metrics::CAMPAIGN_PLANS_TOTAL) {
        out.push_str("campaign:\n");
        let _ = writeln!(
            out,
            "  {total} plan(s) executed: {} certified, {} violated",
            counter(owp_metrics::CAMPAIGN_CERTIFIED_TOTAL).unwrap_or(0),
            counter(owp_metrics::CAMPAIGN_VIOLATIONS_TOTAL).unwrap_or(0),
        );
        for class in owp_metrics::CAMPAIGN_CLASSES {
            let plans = owp_metrics::campaign_plans_key(class)
                .and_then(|k| counter(k))
                .unwrap_or(0);
            let violations = owp_metrics::campaign_violations_key(class)
                .and_then(|k| counter(k))
                .unwrap_or(0);
            let _ = writeln!(
                out,
                "  {class:<16} {plans:>6} plan(s), {violations} violation(s)"
            );
        }
        if let Some(h) = hist(owp_metrics::CAMPAIGN_PLAN_WALL_US) {
            if h.count > 0 {
                let _ = writeln!(
                    out,
                    "  plan wall time n={} mean={:.0}us p99~{:.0}us",
                    h.count,
                    h.mean(),
                    h.quantile_interpolated(0.99).unwrap_or(0.0),
                );
            }
        }
    }

    out.push_str("audit:\n");
    let verdict = counter("audit_violations_total");
    match verdict {
        None => out.push_str("  no audit ran (snapshot has no audit_violations_total)\n"),
        Some(0) => {
            let checks = counter("audit_checks_total").unwrap_or(0);
            let _ = writeln!(out, "  clean — 0 violations over {checks} checks");
            for (name, v) in &snap.gauges {
                if name.starts_with("audit_") {
                    let _ = writeln!(out, "  {name} = {v:.4}");
                }
            }
        }
        Some(v) => {
            let _ = writeln!(out, "  FAILED — {v} invariant violation(s) recorded");
        }
    }
    emit(&out);
    if matches!(verdict, Some(v) if v > 0) {
        std::process::exit(1);
    }
}

fn inspect_causal(path: &str, top: usize, dot: Option<&str>) {
    let doc = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    let log = EventLog::parse_jsonl(&doc)
        .unwrap_or_else(|e| fail(&format!("cannot parse {path}: {e}")));
    let dag = CausalDag::from_log(&log);

    let mut out = String::new();
    if dag.is_empty() {
        emit(&format!("{path}: no span records (was the trace written by e20?)\n"));
        return;
    }
    let (mut delivered, mut dropped, mut dead, mut in_flight) = (0u64, 0u64, 0u64, 0u64);
    for s in dag.spans() {
        match s.outcome {
            owp_telemetry::SpanOutcome::Delivered => delivered += 1,
            owp_telemetry::SpanOutcome::Dropped => dropped += 1,
            owp_telemetry::SpanOutcome::DeadLettered => dead += 1,
            owp_telemetry::SpanOutcome::InFlight => in_flight += 1,
        }
    }
    let _ = writeln!(
        out,
        "{path}: {} spans ({} roots), {} delivered, {} dropped, {} dead-lettered, {} in flight",
        dag.len(),
        dag.roots(),
        delivered,
        dropped,
        dead,
        in_flight
    );
    let _ = writeln!(
        out,
        "  happens-before: max depth {}, max fan-out {}",
        dag.max_depth(),
        dag.max_fanout()
    );

    let violations = dag.verify();
    if violations.is_empty() {
        out.push_str("  certificate: acyclic and temporally consistent (Lemma 5 holds)\n");
    } else {
        let _ = writeln!(out, "  certificate: FAILED — {} violation(s):", violations.len());
        for v in &violations {
            let _ = writeln!(out, "    {v}");
        }
    }

    let paths = dag.top_critical_paths(top);
    for (i, p) in paths.iter().enumerate() {
        let _ = writeln!(
            out,
            "critical path #{}: {} hops, latency {} (ends at t={})",
            i + 1,
            p.len(),
            p.total_latency(),
            p.end_time
        );
        for hop in &p.hops {
            let when = match hop.delivered {
                Some(d) => format!("{}..{d}", hop.sent),
                None => format!("{}..?", hop.sent),
            };
            let _ = writeln!(
                out,
                "  {:<6} {:<4} {:>5} -> {:<5} t={:<11} wait {:<4} flight {}",
                hop.span.to_string(),
                hop.kind.label(),
                hop.from.0,
                hop.to.0,
                when,
                hop.wait,
                hop.flight
            );
        }
    }

    let fanout = dag.kind_fanout();
    if !fanout.is_empty() {
        out.push_str("causation fan-out (parent kind -> child kind):\n");
        for ((pk, ck), n) in &fanout {
            let _ = writeln!(out, "  {pk:<5} -> {ck:<5} {n}");
        }
    }

    let lifecycles = dag.edge_lifecycles();
    if !lifecycles.is_empty() {
        let mut tally: std::collections::BTreeMap<&str, u64> = std::collections::BTreeMap::new();
        for l in &lifecycles {
            *tally.entry(l.outcome.label()).or_insert(0) += 1;
        }
        let counts: Vec<String> =
            tally.iter().map(|(k, v)| format!("{v} {k}")).collect();
        let _ = writeln!(
            out,
            "edge lifecycles: {} proposed pairs ({})",
            lifecycles.len(),
            counts.join(", ")
        );
    }

    if let Some(dot_path) = dot {
        match std::fs::write(dot_path, dag.to_dot(&paths)) {
            Ok(()) => {
                let _ = writeln!(out, "[wrote Graphviz digraph of {} path(s) to {dot_path}]", paths.len());
            }
            Err(e) => fail(&format!("cannot write {dot_path}: {e}")),
        }
    }

    emit(&out);
    if !violations.is_empty() {
        std::process::exit(1);
    }
}

fn inspect_forensics(path: &str) {
    use owp_engine::{normalize_violation, ForensicBundle};

    let doc = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    let bundle = ForensicBundle::parse(&doc)
        .unwrap_or_else(|e| fail(&format!("cannot parse {path}: {e}")));

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{path}: forensic bundle — trigger {:?} at epoch {}",
        bundle.trigger, bundle.epoch
    );
    let _ = writeln!(out, "  reason: {}", bundle.reason);
    let _ = writeln!(
        out,
        "  provenance: {} | {}{}",
        if bundle.rustc.is_empty() { "unknown rustc" } else { &bundle.rustc },
        bundle.config,
        match bundle.seed {
            Some(s) => format!(" | seed {s}"),
            None => String::new(),
        },
    );
    let active = bundle.cur_active.bytes().filter(|&b| b == b'1').count();
    let present = bundle.cur_present.bytes().filter(|&b| b == b'1').count();
    let _ = writeln!(
        out,
        "  membership at capture: {active}/{} nodes active, {present}/{} edges present",
        bundle.cur_active.len(),
        bundle.cur_present.len(),
    );
    let _ = writeln!(
        out,
        "  flight ring: {}/{} events held, {} overwritten, {} watermark(s)",
        bundle.ring_jsonl.lines().count(),
        bundle.ring_capacity,
        bundle.ring_dropped,
        bundle.watermarks.len(),
    );
    let _ = writeln!(
        out,
        "  history: {} step(s) from checkpoint epoch {} (last good: {})",
        bundle.steps.len(),
        bundle.origin_epoch,
        bundle.last_good_epoch,
    );
    match &bundle.shrunk {
        Some(s) => {
            let _ = writeln!(
                out,
                "  shrunk reproducer: steps {}..={} ({} of {}; {} replay(s) spent)",
                s.start,
                s.end,
                s.end - s.start + 1,
                bundle.steps.len(),
                s.replays,
            );
        }
        None => out.push_str("  no shrunk reproducer (window did not reproduce the failure)\n"),
    }

    // Re-execute: restore the checkpoint, replay the reproducer, certify.
    match bundle.verify() {
        Err(e) => {
            emit(&out);
            fail(&format!("bundle cannot be re-executed: {e}"));
        }
        Ok(None) => {
            out.push_str("  re-execution: reproducer replays CLEAN — failure not reproduced\n");
            emit(&out);
        }
        Ok(Some(violation)) => {
            let matches = normalize_violation(&violation) == normalize_violation(&bundle.reason);
            let _ = writeln!(
                out,
                "  re-execution: reproducer STILL FAILS ({} recorded violation)\n    {violation}",
                if matches { "same as" } else { "DIFFERENT from" },
            );
            emit(&out);
            std::process::exit(1);
        }
    }
}

fn inspect_wal(path: &str, snapshot: Option<&str>, universe: Option<&str>) {
    use owp_matchd::wal;

    let (summary, records) = wal::scan(std::path::Path::new(path))
        .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{path}: {} record(s), {} of {} bytes valid",
        summary.records, summary.valid_bytes, summary.file_bytes
    );
    match (summary.first_epoch, summary.last_epoch) {
        (Some(a), Some(b)) => {
            let _ = writeln!(out, "  epochs {a}..={b}");
        }
        _ => out.push_str("  epochs: none (empty log)\n"),
    }
    if summary.is_clean() {
        out.push_str("  integrity: clean — every record framed and CRC-verified\n");
    } else {
        let _ = writeln!(
            out,
            "  integrity: TORN TAIL — {} trailing byte(s) unusable: {}",
            summary.torn_bytes,
            summary.torn_reason.as_deref().unwrap_or("unknown"),
        );
    }

    // Replay-certify when a starting state is available.
    let mut engine_and_floor = None;
    match (snapshot, universe) {
        (Some(snap_path), _) => {
            let snap = owp_matchd::load_snapshot_file(std::path::Path::new(snap_path))
                .unwrap_or_else(|e| fail(&e));
            let _ = writeln!(
                out,
                "  snapshot {snap_path}: epoch {}, CRC-verified, restores bit-identically",
                snap.epoch
            );
            let engine =
                owp_engine::Engine::from_snapshot(&snap.origin, owp_engine::Epoch(snap.epoch))
                    .unwrap_or_else(|e| fail(&format!("snapshot does not restore: {e}")));
            engine_and_floor = Some((engine, snap.epoch));
        }
        (None, Some(spec)) => {
            let problem = owp_matchd::from_spec(spec).unwrap_or_else(|e| fail(&e));
            engine_and_floor = Some((owp_engine::Engine::new(problem), 0));
        }
        (None, None) => {
            out.push_str("  (no --snapshot/--universe: integrity scan only, no replay)\n");
        }
    }
    let mut replay_failed = false;
    if let Some((mut engine, floor)) = engine_and_floor {
        let mut replayed = 0usize;
        let mut skipped = 0usize;
        let mut error = None;
        for rec in &records {
            if rec.epoch <= floor {
                skipped += 1;
                continue;
            }
            if let Err(e) = engine.apply_batch(&rec.events) {
                error = Some(format!("record at epoch {}: {e}", rec.epoch));
                break;
            }
            replayed += 1;
        }
        match error {
            Some(e) => {
                let _ = writeln!(out, "  replay: FAILED — {e}");
                replay_failed = true;
            }
            None => {
                let _ = writeln!(
                    out,
                    "  replay: {replayed} record(s) applied ({skipped} at or below the \
                     snapshot epoch skipped), engine at epoch {}",
                    engine.epoch().0
                );
                match engine.certify() {
                    Ok(()) => out.push_str(
                        "  certify: recovered matching bit-identical to a from-scratch lic()\n",
                    ),
                    Err(e) => {
                        let _ = writeln!(out, "  certify: FAILED — {e}");
                        replay_failed = true;
                    }
                }
            }
        }
    }
    emit(&out);
    if !summary.is_clean() || replay_failed {
        std::process::exit(1);
    }
}

fn inspect_ops(addr: &str) {
    use owp_matchd::OpsStatus;

    let get = |path: &str| -> Result<(u16, String), String> {
        let mut s = std::net::TcpStream::connect(addr)
            .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
        let _ = s.set_read_timeout(Some(std::time::Duration::from_secs(5)));
        s.write_all(format!("GET {path} HTTP/1.0\r\nHost: inspect\r\n\r\n").as_bytes())
            .map_err(|e| format!("cannot write to {addr}: {e}"))?;
        owp_matchd::http::read_response(&mut s, 4 << 20)
    };

    let (code, body) = get("/status").unwrap_or_else(|e| fail(&e));
    if code != 200 {
        fail(&format!("{addr}/status answered {code}: {}", body.trim()));
    }
    let status = OpsStatus::parse(&body)
        .unwrap_or_else(|e| fail(&format!("cannot parse {addr}/status: {e}")));
    let (ready_code, ready_body) = get("/readyz").unwrap_or_else(|e| fail(&e));

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{addr}: matchd up {:.1}s — epoch {}, ΣS {:.4}, {} active node(s), {} matched edge(s)",
        status.uptime_ms as f64 / 1e3,
        status.epoch,
        status.sigma_s,
        status.active,
        status.matched,
    );
    let _ = writeln!(
        out,
        "  readiness: {ready_code} {}",
        if ready_code == 200 { "ready".to_string() } else { format!("NOT READY — {}", ready_body.trim()) },
    );
    let _ = writeln!(
        out,
        "  auditor: {} — {} pass(es), {} failure(s), last audited epoch {}, {} bundle(s) spooled",
        if status.audit_clean { "clean" } else { "VIOLATION LATCHED" },
        status.audit_passes,
        status.audit_failures,
        status.last_audit_epoch,
        status.bundles_spooled,
    );
    let _ = writeln!(
        out,
        "  ingest: queue {}/{}, wal {} byte(s) / {} record(s), snapshot epoch {} ({} epoch(s) behind)",
        status.queue_depth,
        status.queue_capacity,
        status.wal_bytes,
        status.wal_records,
        status.snapshot_epoch,
        status.snapshot_age_epochs,
    );
    let _ = writeln!(
        out,
        "  traffic: {} open connection(s) of {} total, {} request(s)",
        status.connections, status.connections_total, status.requests_total,
    );
    if !status.slow.is_empty() {
        let _ = writeln!(out, "  worst request spans (of the last {}):", status.slow.len());
        for s in status.slow.iter().take(5) {
            let _ = writeln!(
                out,
                "    req {:>6} conn {:>3} {:<8} epoch {:<8} queue {:>6}us apply {:>6}us ack {:>6}us total {:>7}us",
                s.req, s.conn, s.kind, s.epoch, s.queue_us, s.apply_us, s.ack_us, s.total_us,
            );
        }
    }
    let _ = writeln!(out, "  build: {}", status.rustc);
    emit(&out);
    if ready_code != 200 || !status.audit_clean || status.audit_failures > 0 {
        std::process::exit(1);
    }
}

fn inspect_campaign(path: &str, replay_plan: Option<u64>) {
    use owp_bench::campaign::{replay, CampaignReport};

    let doc = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    let report = CampaignReport::parse(&doc)
        .unwrap_or_else(|e| fail(&format!("cannot parse {path}: {e}")));

    let mut out = String::new();
    let c = &report.config;
    let _ = writeln!(
        out,
        "{path}: chaos campaign — {} plan(s), seed {:#x}, gnp(n={}, b={}) x {} instance(s), \
         canary at plan {}",
        c.plans,
        c.seed,
        c.n,
        c.quota,
        c.instances,
        c.inject_at.map(|id| id.to_string()).unwrap_or_else(|| "-".into()),
    );

    let mut failed = false;
    match report.verify_digest() {
        Ok(()) => {
            let _ = writeln!(out, "  attestation: digest {} verifies", report.digest);
        }
        Err(e) => {
            let _ = writeln!(out, "  attestation: FAILED — {e}");
            failed = true;
        }
    }

    out.push_str("coverage:\n");
    let mut uncovered = Vec::new();
    for row in &report.coverage {
        let _ = writeln!(
            out,
            "  {:<16} generated {:>5}  executed {:>5}  certified {:>5}  violated {:>3}",
            row.class.label(),
            row.generated,
            row.executed,
            row.certified,
            row.violated,
        );
        if row.executed == 0 || row.certified == 0 {
            uncovered.push(row.class.label());
        }
    }
    if uncovered.is_empty() {
        out.push_str("  every fault class executed and certified at least once\n");
    } else {
        let _ = writeln!(out, "  COVERAGE GAP — no certified plans for: {}", uncovered.join(", "));
        failed = true;
    }

    let injected = report.violations.iter().filter(|v| v.injected).count();
    let genuine = report.violations.len() - injected;
    let _ = writeln!(
        out,
        "violations: {} ({injected} injected canary, {genuine} genuine); {} event(s) total",
        report.violations.len(),
        report.total_events,
    );
    for v in &report.violations {
        let first = v.reasons.first().map(String::as_str).unwrap_or("(none)");
        let _ = writeln!(
            out,
            "  plan {:>5} {:<16} {} — {first}",
            v.plan,
            v.class.label(),
            if v.injected { "injected" } else { "GENUINE" },
        );
    }
    if !report.clean() {
        failed = true;
    }
    let _ = writeln!(
        out,
        "verdict: {}",
        if report.clean() {
            "clean — every violation is the detected canary"
        } else {
            "VIOLATED — genuine certificate failures recorded"
        },
    );

    if let Some(plan_id) = replay_plan {
        match replay(&report, plan_id) {
            Err(e) => {
                emit(&out);
                fail(&format!("cannot replay plan {plan_id}: {e}"));
            }
            Ok(r) => {
                if r.matches {
                    let _ = writeln!(
                        out,
                        "replay plan {plan_id}: reproduces the recorded outcome exactly \
                         ({} reason(s))",
                        r.reasons.len(),
                    );
                } else {
                    let _ = writeln!(
                        out,
                        "replay plan {plan_id}: MISMATCH — recorded {:?}, fresh run gives {:?}",
                        r.recorded, r.reasons,
                    );
                    failed = true;
                }
            }
        }
    }

    emit(&out);
    if failed {
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [cmd, path] if cmd == "trace" => inspect_trace(path),
        [cmd, path] if cmd == "metrics" => inspect_metrics(path),
        [cmd, path] if cmd == "forensics" => inspect_forensics(path),
        [cmd, addr] if cmd == "ops" => inspect_ops(addr),
        [cmd, rest @ ..] if cmd == "wal" && !rest.is_empty() => {
            let mut path: Option<&str> = None;
            let mut snapshot: Option<&str> = None;
            let mut universe: Option<&str> = None;
            let mut it = rest.iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--snapshot" => match it.next() {
                        Some(p) => snapshot = Some(p.as_str()),
                        None => fail("--snapshot requires a path argument"),
                    },
                    "--universe" => match it.next() {
                        Some(s) => universe = Some(s.as_str()),
                        None => fail("--universe requires a spec argument"),
                    },
                    _ if a.starts_with("--") => fail(&format!("unknown flag: {a}")),
                    _ if path.is_none() => path = Some(a.as_str()),
                    _ => fail("wal takes exactly one log path"),
                }
            }
            match path {
                Some(p) => inspect_wal(p, snapshot, universe),
                None => fail("wal requires a log path"),
            }
        }
        [cmd, rest @ ..] if cmd == "campaign" && !rest.is_empty() => {
            let mut path: Option<&str> = None;
            let mut replay_plan: Option<u64> = None;
            let mut it = rest.iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--replay" => match it.next().and_then(|v| v.parse().ok()) {
                        Some(id) => replay_plan = Some(id),
                        None => fail("--replay requires a plan id"),
                    },
                    _ if a.starts_with("--") => fail(&format!("unknown flag: {a}")),
                    _ if path.is_none() => path = Some(a.as_str()),
                    _ => fail("campaign takes exactly one report path"),
                }
            }
            match path {
                Some(p) => inspect_campaign(p, replay_plan),
                None => fail("campaign requires a report path"),
            }
        }
        [cmd, rest @ ..] if cmd == "causal" && !rest.is_empty() => {
            let mut path: Option<&str> = None;
            let mut top = 1usize;
            let mut dot: Option<&str> = None;
            let mut it = rest.iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--top" => match it.next().and_then(|v| v.parse().ok()) {
                        Some(k) if k > 0 => top = k,
                        _ => fail("--top requires a positive integer"),
                    },
                    "--dot" => match it.next() {
                        Some(p) => dot = Some(p.as_str()),
                        None => fail("--dot requires a path argument"),
                    },
                    _ if a.starts_with("--") => fail(&format!("unknown flag: {a}")),
                    _ if path.is_none() => path = Some(a.as_str()),
                    _ => fail("causal takes exactly one trace path"),
                }
            }
            match path {
                Some(p) => inspect_causal(p, top, dot),
                None => fail("causal requires a trace path"),
            }
        }
        _ => {
            eprintln!("usage: owp-inspect <trace|metrics|causal|forensics|wal|ops|campaign> <path|addr>");
            eprintln!("  trace     <series.jsonl|.csv>   per-phase convergence summary");
            eprintln!("  metrics   <snapshot.json|.prom> metrics summary + audit report");
            eprintln!("  causal    <events.jsonl> [--top <k>] [--dot <path>]");
            eprintln!("                                  happens-before DAG + critical paths");
            eprintln!("  forensics <bundle.json>         summarize + re-execute a post-mortem");
            eprintln!("                                  bundle (exit 1 iff it still fails)");
            eprintln!("  wal       <matchd.wal> [--snapshot <snapshot.bin>] [--universe <spec>]");
            eprintln!("                                  summarize a matchd WAL; with a start");
            eprintln!("                                  state, replay + certify the recovery");
            eprintln!("  ops       <host:port>           live matchd admin plane: status,");
            eprintln!("                                  readiness, auditor verdict, slow spans");
            eprintln!("  campaign  <report.json> [--replay <plan>]");
            eprintln!("                                  chaos-campaign report: attestation,");
            eprintln!("                                  coverage ledger, violation verdict");
            eprintln!("exit codes: 0 clean, 1 violation/failed certificate/live reproducer,");
            eprintln!("            2 usage or unreadable input");
            std::process::exit(2);
        }
    }
}
