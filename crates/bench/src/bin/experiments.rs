//! Experiment runner: regenerates every table/figure of `EXPERIMENTS.md`.
//!
//! ```text
//! experiments <e1|e2|...|e11|all> [--quick]
//! ```

use owp_bench::experiments;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let ids: Vec<String> = args.into_iter().filter(|a| !a.starts_with("--")).collect();

    if ids.is_empty() {
        eprintln!("usage: experiments <e1..e11|all> [--quick]");
        eprintln!("known experiments: {}", experiments::ALL.join(", "));
        std::process::exit(2);
    }

    let selected: Vec<&str> = if ids.iter().any(|i| i == "all") {
        experiments::ALL.to_vec()
    } else {
        ids.iter().map(|s| s.as_str()).collect()
    };

    for id in selected {
        let start = Instant::now();
        match experiments::run(id, quick) {
            Some(tables) => {
                for t in tables {
                    println!();
                    t.print();
                }
                println!("[{id} done in {:.1?}]", start.elapsed());
            }
            None => {
                eprintln!("unknown experiment id: {id}");
                std::process::exit(2);
            }
        }
    }
}
