//! Experiment runner: regenerates every table/figure of `EXPERIMENTS.md`.
//!
//! ```text
//! experiments <e1|e2|...|e19|all> [--quick] [--json] [--trace-out <path>]
//! ```
//!
//! With `--json`, each experiment additionally writes its tables to
//! `BENCH_<id>.json` in the current directory (e.g. `experiments e15 --json`
//! produces `BENCH_e15.json`) so perf numbers can be tracked across commits
//! without scraping stdout.
//!
//! With `--trace-out <path>`, the per-round convergence series of a traced
//! experiment (currently `e18`) is written as JSONL — one
//! `{"round":…,"matched_edges":…,…}` object per line (schema in
//! `owp_telemetry::series`). Selecting `--trace-out` without a traced
//! experiment is an error.

use owp_bench::experiments;
use std::time::Instant;

fn main() {
    let mut quick = false;
    let mut json = false;
    let mut trace_out: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--json" => json = true,
            "--trace-out" => match args.next() {
                Some(path) => trace_out = Some(path),
                None => {
                    eprintln!("--trace-out requires a path argument");
                    std::process::exit(2);
                }
            },
            _ if a.starts_with("--") => {
                eprintln!("unknown flag: {a}");
                std::process::exit(2);
            }
            _ => ids.push(a),
        }
    }

    if ids.is_empty() {
        eprintln!("usage: experiments <e1..e19|all> [--quick] [--json] [--trace-out <path>]");
        eprintln!("known experiments: {}", experiments::ALL.join(", "));
        std::process::exit(2);
    }

    let selected: Vec<&str> = if ids.iter().any(|i| i == "all") {
        experiments::ALL.to_vec()
    } else {
        ids.iter().map(|s| s.as_str()).collect()
    };

    let mut trace_written = false;
    for id in selected {
        let start = Instant::now();
        match experiments::run_with_trace(id, quick) {
            Some((tables, series)) => {
                for t in &tables {
                    println!();
                    t.print();
                }
                let elapsed = start.elapsed();
                if json {
                    let path = format!("BENCH_{id}.json");
                    let doc = experiments::tables_to_json(id, quick, elapsed, &tables);
                    match std::fs::write(&path, doc) {
                        Ok(()) => println!("[{id}: wrote {path}]"),
                        Err(e) => {
                            eprintln!("cannot write {path}: {e}");
                            std::process::exit(1);
                        }
                    }
                }
                if let (Some(path), Some(series)) = (trace_out.as_deref(), series.as_ref()) {
                    match series.write_jsonl(path) {
                        Ok(()) => {
                            println!("[{id}: wrote {} trace rows to {path}]", series.len());
                            trace_written = true;
                        }
                        Err(e) => {
                            eprintln!("cannot write {path}: {e}");
                            std::process::exit(1);
                        }
                    }
                }
                println!("[{id} done in {elapsed:.1?}]");
            }
            None => {
                eprintln!("unknown experiment id: {id}");
                std::process::exit(2);
            }
        }
    }

    if trace_out.is_some() && !trace_written {
        eprintln!("--trace-out given but no selected experiment records a convergence trace (use e18)");
        std::process::exit(2);
    }
}
