//! Experiment runner: regenerates every table/figure of `EXPERIMENTS.md`.
//!
//! ```text
//! experiments <e1|e2|...|e25|all> [--quick] [--json] [--trace-out <path>]
//!             [--metrics-out <path>] [--forensics-out <path>]
//!             [--campaign-out <path>] [--watch]
//! ```
//!
//! With `--json`, each experiment additionally writes its tables to
//! `BENCH_<id>.json` in the current directory (e.g. `experiments e15 --json`
//! produces `BENCH_e15.json`) so perf numbers can be tracked across commits
//! without scraping stdout.
//!
//! With `--trace-out <path>`, the raw trace artifact of a traced
//! experiment (see `experiments::TRACED`) is written as JSONL: for `e18`
//! the per-round convergence series (schema in `owp_telemetry::series`),
//! for `e20` the span-annotated telemetry event log consumed by
//! `owp-inspect causal`. Experiments without a trace warn and ignore the
//! flag; selecting *only* untraced experiments is an error.
//!
//! With `--metrics-out <path>`, the instrumented experiments (see
//! `experiments::INSTRUMENTED`: e5, e18, e19, e20, e21, e23) run with a shared
//! `MetricsRegistry` — histograms, message counters and the online
//! invariant audit — and the final snapshot is written to `path`:
//! Prometheus text format if the path ends in `.prom`, JSON otherwise.
//! Any audit violation makes the run exit non-zero.
//!
//! With `--forensics-out <path>`, a forensic experiment (see
//! `experiments::FORENSIC`: e22) writes the first post-mortem bundle its
//! injected-corruption sweep captured as JSON — the input of
//! `owp-inspect forensics`. Experiments without a bundle warn and ignore
//! the flag; selecting *only* non-forensic experiments is an error.
//!
//! With `--campaign-out <path>`, a campaign experiment (see
//! `experiments::CAMPAIGN`: e25) writes its attested chaos-campaign
//! report as canonical JSON — the input of `owp-inspect campaign`.
//! Experiments without a campaign warn and ignore the flag; selecting
//! *only* non-campaign experiments is an error.
//!
//! With `--watch`, a background thread prints a compact metrics table to
//! stderr every 2 seconds while experiments run (implies collecting
//! metrics even without `--metrics-out`).

use owp_bench::experiments;
use owp_metrics::{MetricsRegistry, MetricsSnapshot};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// One compact stderr block per tick: counters and gauges one per line,
/// histograms as count/mean/p50/p99.
fn render_watch(snap: &MetricsSnapshot) -> String {
    let mut out = String::from("--- metrics ---\n");
    for (name, v) in &snap.counters {
        out.push_str(&format!("{name:<34} {v}\n"));
    }
    for (name, v) in &snap.gauges {
        out.push_str(&format!("{name:<34} {v:.4}\n"));
    }
    for (name, h) in &snap.histograms {
        out.push_str(&format!(
            "{name:<34} n={} mean={:.1} p50<={} p99<={}\n",
            h.count,
            h.mean(),
            h.quantile_upper_bound(0.5).unwrap_or(0),
            h.quantile_upper_bound(0.99).unwrap_or(0),
        ));
    }
    out
}

fn main() {
    let mut quick = false;
    let mut json = false;
    let mut watch = false;
    let mut trace_out: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut forensics_out: Option<String> = None;
    let mut campaign_out: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--json" => json = true,
            "--watch" => watch = true,
            "--trace-out" => match args.next() {
                Some(path) => trace_out = Some(path),
                None => {
                    eprintln!("--trace-out requires a path argument");
                    std::process::exit(2);
                }
            },
            "--metrics-out" => match args.next() {
                Some(path) => metrics_out = Some(path),
                None => {
                    eprintln!("--metrics-out requires a path argument");
                    std::process::exit(2);
                }
            },
            "--forensics-out" => match args.next() {
                Some(path) => forensics_out = Some(path),
                None => {
                    eprintln!("--forensics-out requires a path argument");
                    std::process::exit(2);
                }
            },
            "--campaign-out" => match args.next() {
                Some(path) => campaign_out = Some(path),
                None => {
                    eprintln!("--campaign-out requires a path argument");
                    std::process::exit(2);
                }
            },
            _ if a.starts_with("--") => {
                eprintln!("unknown flag: {a}");
                std::process::exit(2);
            }
            _ => ids.push(a),
        }
    }

    if ids.is_empty() {
        eprintln!(
            "usage: experiments <e1..e25|all> [--quick] [--json] [--trace-out <path>] \
             [--metrics-out <path>] [--forensics-out <path>] [--campaign-out <path>] [--watch]"
        );
        eprintln!("known experiments: {}", experiments::ALL.join(", "));
        std::process::exit(2);
    }

    let selected: Vec<&str> = if ids.iter().any(|i| i == "all") {
        experiments::ALL.to_vec()
    } else {
        ids.iter().map(|s| s.as_str()).collect()
    };

    let registry = (metrics_out.is_some() || watch).then(|| Arc::new(MetricsRegistry::new()));

    // The watch printer shares the registry; recording stays lock-free, the
    // printer takes the cold snapshot lock once per tick.
    let stop = Arc::new(AtomicBool::new(false));
    let watcher = registry.as_ref().filter(|_| watch).map(|reg| {
        let reg = Arc::clone(reg);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(std::time::Duration::from_secs(2));
                eprint!("{}", render_watch(&reg.snapshot()));
            }
        })
    });

    let mut trace_written = false;
    let mut forensics_written = false;
    let mut campaign_written = false;
    for id in selected {
        if trace_out.is_some() && !experiments::TRACED.contains(&id) {
            eprintln!(
                "warning: {id} records no trace artifact, --trace-out ignored for it \
                 (traced experiments: {})",
                experiments::TRACED.join(", ")
            );
        }
        if forensics_out.is_some() && !experiments::FORENSIC.contains(&id) {
            eprintln!(
                "warning: {id} captures no forensic bundle, --forensics-out ignored for it \
                 (forensic experiments: {})",
                experiments::FORENSIC.join(", ")
            );
        }
        if campaign_out.is_some() && !experiments::CAMPAIGN.contains(&id) {
            eprintln!(
                "warning: {id} runs no chaos campaign, --campaign-out ignored for it \
                 (campaign experiments: {})",
                experiments::CAMPAIGN.join(", ")
            );
        }
        let start = Instant::now();
        // Forensic capture and metrics instrumentation are disjoint today
        // (e22 is not in INSTRUMENTED), so the two dispatch paths never
        // compete for the same experiment.
        let outcome = if forensics_out.is_some() && experiments::FORENSIC.contains(&id) {
            experiments::run_with_forensics(id, quick).map(|(t, b)| (t, None, b, None))
        } else if campaign_out.is_some() && experiments::CAMPAIGN.contains(&id) {
            // Campaign capture composes with metrics: the registry (if
            // any) gets the campaign_* ledger through the same run.
            experiments::run_with_campaign(id, quick, registry.as_deref())
                .map(|(t, r)| (t, None, None, r))
        } else {
            experiments::run_instrumented(id, quick, registry.as_deref())
                .map(|(t, s)| (t, s, None, None))
        };
        match outcome {
            Some((tables, series, bundle, report)) => {
                for t in &tables {
                    println!();
                    t.print();
                }
                let elapsed = start.elapsed();
                if json {
                    let path = format!("BENCH_{id}.json");
                    let doc = experiments::tables_to_json(id, quick, elapsed, &tables);
                    match std::fs::write(&path, doc) {
                        Ok(()) => println!("[{id}: wrote {path}]"),
                        Err(e) => {
                            eprintln!("cannot write {path}: {e}");
                            std::process::exit(1);
                        }
                    }
                }
                if let (Some(path), Some(artifact)) = (trace_out.as_deref(), series.as_ref()) {
                    match std::fs::write(path, artifact.to_jsonl()) {
                        Ok(()) => {
                            println!("[{id}: wrote {} trace rows to {path}]", artifact.len());
                            trace_written = true;
                        }
                        Err(e) => {
                            eprintln!("cannot write {path}: {e}");
                            std::process::exit(1);
                        }
                    }
                }
                if let (Some(path), Some(b)) = (forensics_out.as_deref(), bundle.as_ref()) {
                    match std::fs::write(path, b.to_json()) {
                        Ok(()) => {
                            println!(
                                "[{id}: wrote forensic bundle ({} recorded step(s), \
                                 reproducer {}) to {path}]",
                                b.steps.len(),
                                b.reproducer().len()
                            );
                            forensics_written = true;
                        }
                        Err(e) => {
                            eprintln!("cannot write {path}: {e}");
                            std::process::exit(1);
                        }
                    }
                }
                if let (Some(path), Some(r)) = (campaign_out.as_deref(), report.as_ref()) {
                    match std::fs::write(path, r.to_json()) {
                        Ok(()) => {
                            println!(
                                "[{id}: wrote campaign report ({} plan(s), {} violation(s), \
                                 digest {}) to {path}]",
                                r.config.plans,
                                r.violations.len(),
                                r.digest
                            );
                            campaign_written = true;
                        }
                        Err(e) => {
                            eprintln!("cannot write {path}: {e}");
                            std::process::exit(1);
                        }
                    }
                }
                println!("[{id} done in {elapsed:.1?}]");
            }
            None => {
                eprintln!("unknown experiment id: {id}");
                std::process::exit(2);
            }
        }
    }

    stop.store(true, Ordering::Relaxed);
    if let Some(w) = watcher {
        let _ = w.join();
    }

    if let Some(reg) = &registry {
        let snap = reg.snapshot();
        if watch {
            eprint!("{}", render_watch(&snap));
        }
        if let Some(path) = &metrics_out {
            let doc = if path.ends_with(".prom") {
                snap.to_prometheus()
            } else {
                snap.to_json()
            };
            match std::fs::write(path, doc) {
                Ok(()) => println!("[wrote metrics snapshot to {path}]"),
                Err(e) => {
                    eprintln!("cannot write {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
        let violations = snap
            .counters
            .iter()
            .find(|(name, _)| name == "audit_violations_total")
            .map(|&(_, v)| v)
            .unwrap_or(0);
        if violations > 0 {
            eprintln!("audit: {violations} invariant violation(s) detected during the run");
            std::process::exit(1);
        }
    }

    if trace_out.is_some() && !trace_written {
        eprintln!(
            "--trace-out given but no selected experiment records a trace artifact (use {})",
            experiments::TRACED.join(", ")
        );
        std::process::exit(2);
    }
    if forensics_out.is_some() && !forensics_written {
        eprintln!(
            "--forensics-out given but no selected experiment captured a forensic bundle (use {})",
            experiments::FORENSIC.join(", ")
        );
        std::process::exit(2);
    }
    if campaign_out.is_some() && !campaign_written {
        eprintln!(
            "--campaign-out given but no selected experiment ran a chaos campaign (use {})",
            experiments::CAMPAIGN.join(", ")
        );
        std::process::exit(2);
    }
}
