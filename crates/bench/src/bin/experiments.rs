//! Experiment runner: regenerates every table/figure of `EXPERIMENTS.md`.
//!
//! ```text
//! experiments <e1|e2|...|e17|all> [--quick] [--json]
//! ```
//!
//! With `--json`, each experiment additionally writes its tables to
//! `BENCH_<id>.json` in the current directory (e.g. `experiments e15 --json`
//! produces `BENCH_e15.json`) so perf numbers can be tracked across commits
//! without scraping stdout.

use owp_bench::experiments;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    if let Some(bad) = args
        .iter()
        .find(|a| a.starts_with("--") && *a != "--quick" && *a != "--json")
    {
        eprintln!("unknown flag: {bad}");
        std::process::exit(2);
    }
    let ids: Vec<String> = args.into_iter().filter(|a| !a.starts_with("--")).collect();

    if ids.is_empty() {
        eprintln!("usage: experiments <e1..e17|all> [--quick] [--json]");
        eprintln!("known experiments: {}", experiments::ALL.join(", "));
        std::process::exit(2);
    }

    let selected: Vec<&str> = if ids.iter().any(|i| i == "all") {
        experiments::ALL.to_vec()
    } else {
        ids.iter().map(|s| s.as_str()).collect()
    };

    for id in selected {
        let start = Instant::now();
        match experiments::run(id, quick) {
            Some(tables) => {
                for t in &tables {
                    println!();
                    t.print();
                }
                let elapsed = start.elapsed();
                if json {
                    let path = format!("BENCH_{id}.json");
                    let doc = experiments::tables_to_json(id, quick, elapsed, &tables);
                    match std::fs::write(&path, doc) {
                        Ok(()) => println!("[{id}: wrote {path}]"),
                        Err(e) => {
                            eprintln!("cannot write {path}: {e}");
                            std::process::exit(1);
                        }
                    }
                }
                println!("[{id} done in {elapsed:.1?}]");
            }
            None => {
                eprintln!("unknown experiment id: {id}");
                std::process::exit(2);
            }
        }
    }
}
