//! Performance guard: re-measures the E15 end-to-end scale sweep and fails
//! (exit 1) if the telemetry-off build or LID wall time regressed more than
//! the tolerance against the committed `BENCH_e15.json` baseline.
//!
//! ```text
//! bench_guard [--baseline <path>] [--tolerance <pct>] [--slack-ms <ms>] [--update]
//! ```
//!
//! * `--baseline` — baseline JSON (default `BENCH_e15.json`), the document
//!   `experiments e15 --json` writes;
//! * `--tolerance` — allowed relative regression in percent (default 10);
//! * `--slack-ms` — absolute grace in milliseconds added on top of the
//!   relative envelope (default 40), so timer jitter on small values does
//!   not trip the guard;
//! * `--update` — instead of checking, rewrite the baseline from the fresh
//!   measurement.
//!
//! The harness compiles the telemetry *feature* in, but every run here
//! leaves the runtime switch off — this is exactly the configuration whose
//! overhead must stay at zero, so the guard doubles as the regression check
//! for the "telemetry off costs nothing" claim.

use owp_bench::experiments::{e15_scale, tables_to_json};
use std::time::Instant;

fn main() {
    let mut baseline_path = "BENCH_e15.json".to_string();
    let mut tolerance_pct = 10.0f64;
    let mut slack_ms = 40.0f64;
    let mut update = false;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} requires a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--baseline" => baseline_path = value("--baseline"),
            "--tolerance" => {
                tolerance_pct = value("--tolerance").parse().unwrap_or_else(|_| {
                    eprintln!("--tolerance wants a number (percent)");
                    std::process::exit(2);
                })
            }
            "--slack-ms" => {
                slack_ms = value("--slack-ms").parse().unwrap_or_else(|_| {
                    eprintln!("--slack-ms wants a number (milliseconds)");
                    std::process::exit(2);
                })
            }
            "--update" => update = true,
            _ => {
                eprintln!("unknown flag: {a}");
                eprintln!("usage: bench_guard [--baseline <path>] [--tolerance <pct>] [--slack-ms <ms>] [--update]");
                std::process::exit(2);
            }
        }
    }

    eprintln!("bench_guard: running the E15 sweep (full sizes, telemetry off)...");
    let start = Instant::now();
    let tables = e15_scale::run(false);
    let elapsed = start.elapsed();
    let fresh = &tables[0];

    if update {
        let doc = tables_to_json("e15", false, elapsed, &tables);
        if let Err(e) = std::fs::write(&baseline_path, doc) {
            eprintln!("cannot write {baseline_path}: {e}");
            std::process::exit(1);
        }
        println!("bench_guard: baseline {baseline_path} updated");
        return;
    }

    let doc = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
        eprintln!("cannot read baseline {baseline_path}: {e} (run `bench_guard --update` to create it)");
        std::process::exit(2);
    });
    let baseline = parse_first_rows(&doc).unwrap_or_else(|| {
        eprintln!("{baseline_path} does not look like an `experiments e15 --json` document");
        std::process::exit(2);
    });

    // Headline table columns: n, edges, build ms, LID ms, msgs/node, ...
    const N: usize = 0;
    const BUILD_MS: usize = 2;
    const LID_MS: usize = 3;

    let mut failures = 0usize;
    let mut compared = 0usize;
    for base_row in &baseline {
        let n = base_row[N];
        let Some(fresh_row) = (0..fresh.row_count())
            .find(|&r| fresh.cell(r, N).parse::<f64>().ok() == Some(n))
        else {
            eprintln!("bench_guard: baseline row n={n} has no fresh counterpart — skipped");
            continue;
        };
        for (label, col) in [("build ms", BUILD_MS), ("LID ms", LID_MS)] {
            let base = base_row[col];
            let now: f64 = fresh.cell(fresh_row, col).parse().expect("numeric cell");
            let limit = base * (1.0 + tolerance_pct / 100.0) + slack_ms;
            compared += 1;
            let verdict = if now <= limit { "ok" } else { "REGRESSED" };
            println!(
                "  n={n:>8} {label:>8}: baseline {base:>8.1} ms, now {now:>8.1} ms (limit {limit:.1} ms) {verdict}"
            );
            if now > limit {
                failures += 1;
            }
        }
    }

    if compared == 0 {
        eprintln!("bench_guard: nothing compared — baseline/fresh size sets are disjoint");
        std::process::exit(2);
    }
    if failures > 0 {
        eprintln!(
            "bench_guard: FAILED — {failures} of {compared} timings regressed beyond {tolerance_pct}% (+{slack_ms} ms)"
        );
        std::process::exit(1);
    }
    println!("bench_guard: ok — {compared} timings within {tolerance_pct}% (+{slack_ms} ms) of {baseline_path}");
}

/// Extracts the first table's `"rows":[[...],...]` from a
/// `BENCH_<id>.json` document as numbers. The headline E15 table is
/// all-numeric, so every cell parses; non-numeric cells (later tables are
/// never reached) would return `None`.
fn parse_first_rows(doc: &str) -> Option<Vec<Vec<f64>>> {
    let start = doc.find("\"rows\":[")? + "\"rows\":[".len();
    let rest = &doc[start..];
    // Rows end at the first `]]` that closes the outer array: scan with a
    // depth counter (cells contain no nested brackets or strings with `]`
    // in the headline table, and we stop before any later table).
    let mut depth = 1usize;
    let mut end = None;
    for (i, c) in rest.char_indices() {
        match c {
            '[' => depth += 1,
            ']' => {
                depth -= 1;
                if depth == 0 {
                    end = Some(i);
                    break;
                }
            }
            _ => {}
        }
    }
    let body = &rest[..end?];
    let mut rows = Vec::new();
    for row in body.split("],") {
        let row = row.trim().trim_start_matches('[').trim_end_matches(']');
        if row.is_empty() {
            continue;
        }
        let cells: Option<Vec<f64>> = row.split(',').map(|c| c.trim().parse().ok()).collect();
        rows.push(cells?);
    }
    Some(rows)
}

#[cfg(test)]
mod tests {
    use super::parse_first_rows;

    #[test]
    fn parses_the_e15_document_shape() {
        let doc = r#"{"experiment":"e15","quick":false,"elapsed_ms":4778.1,"tables":[{"title":"t","headers":["n","edges","build ms","LID ms","msgs/node","sync rounds","mean sat"],"rows":[[10000,49985,120,136,9.8,9,0.688],[50000,249985,261,470,9.8,9,0.686]],"notes":[]},{"title":"phases","headers":["phase"],"rows":[["generate"]],"notes":[]}]}"#;
        let rows = parse_first_rows(doc).expect("parses");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][0], 10000.0);
        assert_eq!(rows[1][3], 470.0);
        // Only the first table is read — the string cell never trips it.
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_first_rows("{}").is_none());
        assert!(parse_first_rows("{\"rows\":[[\"text\"]]}").is_none());
    }
}
