//! Performance guard: re-measures the guarded experiments and fails
//! (exit 1) if any tracked wall time regressed more than the tolerance
//! against the committed `BENCH_<id>.json` baselines.
//!
//! ```text
//! bench_guard [e15|e19|e21|e20|e22|e23|e24|e25|all] [--baseline <path>] [--tolerance <pct>] [--slack-ms <ms>] [--update]
//! ```
//!
//! Guarded experiments:
//!
//! * `e15` — end-to-end scale sweep: telemetry-off build and LID wall
//!   times per size (`BENCH_e15.json`);
//! * `e19` — dynamic engine: bounded-repair and from-scratch-rebuild wall
//!   times per batch size (`BENCH_e19.json`);
//! * `e21` — sharded engine: from-scratch build and structural-churn
//!   repair wall times per thread budget (`BENCH_e21.json`; honors
//!   `OWP_E21_N`, so measure and check under the same value);
//! * `e20` — causal critical path: span count, critical-path length /
//!   latency and sync round count per size (`BENCH_e20.json`). These are
//!   *deterministic structure*, not wall times, so the guard demands
//!   **exact** equality — any drift means the causal layer changed
//!   semantics, which is a correctness signal, not jitter;
//! * `e22` — forensic recorder: churn wall time with the flight + history
//!   rings on vs off (`BENCH_e22.json`), plus an **absolute** ceiling of
//!   10% on the overhead column — the always-on black box's budget is a
//!   design contract, not a baseline, so it is checked against the
//!   constant rather than a committed measurement;
//! * `e25` — chaos campaign: the per-fault-class coverage ledger of the
//!   full seeded campaign (`BENCH_e25.json`). Like e20 these are
//!   **deterministic** counts, checked for exact equality — any drift
//!   means the plan generator, a protocol or a certificate changed
//!   behavior, which is a correctness signal, not jitter;
//! * `e23` — matchd daemon: end-to-end ingest wall time and p99
//!   submission round trip per linger setting over loopback TCP
//!   (`BENCH_e23.json`; honors `OWP_E23_N`). Loopback scheduling is
//!   noisier than an in-process loop, so CI checks it with a widened
//!   tolerance;
//! * `e24` — matchd ops plane: ingest wall time with the admin endpoint,
//!   continuous auditor and request spans on vs off per linger setting
//!   (`BENCH_e24.json`; honors `OWP_E24_N`), plus an **absolute** ceiling
//!   of 5% on the overhead of the pooled summary row (linger = -1, the
//!   median over every off/on pair across the whole linger grid) — like
//!   e22, the observability budget is a design contract checked against
//!   the constant, not a baseline. Only the pooled row is capped: a
//!   per-linger median sees a third of the pairs and its spread on a
//!   noisy box is wider than the budget itself.
//!
//! Flags:
//!
//! * `--baseline` — baseline JSON path override; only valid when a single
//!   experiment is selected (default `BENCH_<id>.json`, the document
//!   `experiments <id> --json` writes);
//! * `--tolerance` — allowed relative regression in percent (default 10);
//! * `--slack-ms` — absolute grace in milliseconds added on top of the
//!   relative envelope (default 40), so timer jitter on small values does
//!   not trip the guard;
//! * `--update` — instead of checking, rewrite the baselines from the
//!   fresh measurements.
//!
//! The harness compiles the telemetry *feature* in, but every run here
//! leaves the runtime switch off — this is exactly the configuration whose
//! overhead must stay at zero, so the guard doubles as the regression check
//! for the "telemetry off costs nothing" claim.

use owp_bench::experiments::{
    e15_scale, e19_dynamic, e20_critical_path, e21_sharded, e22_forensics, e23_matchd,
    e24_ops, e25_campaign, tables_to_json,
};
use owp_bench::Table;
use std::time::Instant;

/// One guarded experiment: which headline-table columns are wall times and
/// which column keys the rows when matching fresh runs against a baseline.
struct Guard {
    id: &'static str,
    what: &'static str,
    key_col: usize,
    key_label: &'static str,
    cols: &'static [(&'static str, usize)],
    run: fn(bool) -> Vec<Table>,
    /// `false`: wall times, checked within tolerance + slack. `true`:
    /// deterministic structural values, checked for exact equality
    /// (tolerance/slack are ignored).
    exact: bool,
    /// Absolute ceiling on one column of every *fresh* row, checked
    /// independently of the baseline: `(label, column, ceiling)`. Used
    /// for ratio columns whose budget is a design contract rather than a
    /// committed measurement (E22 caps recording overhead at 10%).
    cap: Option<(&'static str, usize, f64)>,
    /// When set, the cap applies only to the row with this key — the
    /// experiment's pooled summary row — and the same column in the
    /// other rows is informational (E24 caps the cross-linger pooled
    /// overhead median, not the noisier per-linger medians).
    cap_key: Option<f64>,
}

const GUARDS: &[Guard] = &[
    Guard {
        id: "e15",
        what: "E15 scale sweep (full sizes, telemetry off)",
        key_col: 0,
        key_label: "n",
        cols: &[("build ms", 2), ("LID ms", 3)],
        run: e15_scale::run,
        exact: false,
        cap: None,
        cap_key: None,
    },
    Guard {
        id: "e19",
        what: "E19 dynamic repair sweep (full sizes, telemetry off)",
        key_col: 0,
        key_label: "batch %",
        cols: &[("repair ms", 2), ("rebuild ms", 3)],
        run: e19_dynamic::run,
        exact: false,
        cap: None,
        cap_key: None,
    },
    Guard {
        id: "e21",
        what: "E21 sharded repair sweep (full size, structural churn)",
        key_col: 0,
        key_label: "threads",
        cols: &[("build ms", 2), ("repair ms", 3)],
        run: e21_sharded::run,
        exact: false,
        cap: None,
        cap_key: None,
    },
    Guard {
        id: "e20",
        what: "E20 causal critical-path sweep (full sizes, deterministic)",
        key_col: 0,
        key_label: "n",
        cols: &[("spans", 2), ("crit len", 5), ("crit latency", 6), ("sync rounds", 8)],
        run: e20_critical_path::run,
        exact: true,
        cap: None,
        cap_key: None,
    },
    Guard {
        id: "e22",
        what: "E22 recorder overhead (full size, E19 churn model)",
        key_col: 0,
        key_label: "ring",
        cols: &[("ms", 3)],
        run: e22_forensics::run,
        exact: false,
        cap: Some(("overhead %", 4, 10.0)),
        cap_key: None,
    },
    Guard {
        id: "e25",
        what: "E25 chaos-campaign coverage ledger (full campaign, deterministic)",
        key_col: 0,
        key_label: "class",
        cols: &[("generated", 2), ("executed", 3), ("certified", 4), ("violated", 5)],
        run: e25_campaign::run,
        exact: true,
        cap: None,
        cap_key: None,
    },
    Guard {
        id: "e23",
        what: "E23 matchd ingest sweep (full size, loopback TCP)",
        key_col: 0,
        key_label: "linger us",
        cols: &[("ingest ms", 4), ("p99 ms", 6)],
        run: e23_matchd::run,
        exact: false,
        cap: None,
        cap_key: None,
    },
    Guard {
        id: "e24",
        what: "E24 ops-plane overhead sweep (full size, scraped + audited)",
        key_col: 0,
        key_label: "linger us",
        cols: &[("off ms", 2), ("on ms", 3)],
        run: e24_ops::run,
        exact: false,
        // The observability budget is a design contract: the admin
        // endpoint + continuous auditor + request spans may cost the
        // ingest path at most 5% events/s against the ops-off daemon.
        cap: Some(("pooled ov %", 6, 5.0)),
        cap_key: Some(-1.0),
    },
];

fn main() {
    let mut baseline_override: Option<String> = None;
    let mut tolerance_pct = 10.0f64;
    let mut slack_ms = 40.0f64;
    let mut update = false;
    let mut ids: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} requires a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--baseline" => baseline_override = Some(value("--baseline")),
            "--tolerance" => {
                tolerance_pct = value("--tolerance").parse().unwrap_or_else(|_| {
                    eprintln!("--tolerance wants a number (percent)");
                    std::process::exit(2);
                })
            }
            "--slack-ms" => {
                slack_ms = value("--slack-ms").parse().unwrap_or_else(|_| {
                    eprintln!("--slack-ms wants a number (milliseconds)");
                    std::process::exit(2);
                })
            }
            "--update" => update = true,
            _ if a.starts_with("--") => {
                eprintln!("unknown flag: {a}");
                eprintln!(
                    "usage: bench_guard [e15|e19|e21|e20|e22|e23|e24|e25|all] [--baseline <path>] [--tolerance <pct>] [--slack-ms <ms>] [--update]"
                );
                std::process::exit(2);
            }
            _ => ids.push(a),
        }
    }

    let selected: Vec<&Guard> = if ids.is_empty() || ids.iter().any(|i| i == "all") {
        GUARDS.iter().collect()
    } else {
        ids.iter()
            .map(|id| {
                GUARDS.iter().find(|g| g.id == id).unwrap_or_else(|| {
                    eprintln!(
                        "unknown experiment {id}; guarded: {}",
                        GUARDS.iter().map(|g| g.id).collect::<Vec<_>>().join(", ")
                    );
                    std::process::exit(2);
                })
            })
            .collect()
    };
    if baseline_override.is_some() && selected.len() != 1 {
        eprintln!("--baseline needs exactly one selected experiment");
        std::process::exit(2);
    }

    let mut failures = 0usize;
    let mut compared = 0usize;
    for g in &selected {
        let baseline_path = baseline_override
            .clone()
            .unwrap_or_else(|| format!("BENCH_{}.json", g.id));

        eprintln!("bench_guard: running the {}...", g.what);
        let start = Instant::now();
        let tables = (g.run)(false);
        let elapsed = start.elapsed();
        let fresh = &tables[0];

        if update {
            let doc = tables_to_json(g.id, false, elapsed, &tables);
            if let Err(e) = std::fs::write(&baseline_path, doc) {
                eprintln!("cannot write {baseline_path}: {e}");
                std::process::exit(1);
            }
            println!("bench_guard: baseline {baseline_path} updated");
            continue;
        }

        let doc = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
            eprintln!(
                "cannot read baseline {baseline_path}: {e} (run `bench_guard {} --update` to create it)",
                g.id
            );
            std::process::exit(2);
        });
        let baseline = parse_first_rows(&doc).unwrap_or_else(|| {
            eprintln!(
                "{baseline_path} does not look like an `experiments {} --json` document",
                g.id
            );
            std::process::exit(2);
        });

        for base_row in &baseline {
            let key = base_row[g.key_col];
            let Some(fresh_row) = (0..fresh.row_count())
                .find(|&r| fresh.cell(r, g.key_col).parse::<f64>().ok() == Some(key))
            else {
                eprintln!(
                    "bench_guard: baseline row {}={key} has no fresh counterpart — skipped",
                    g.key_label
                );
                continue;
            };
            if let Some((label, col, ceiling)) = g.cap.filter(|_| g.cap_key.map_or(true, |k| k == key)) {
                let now: f64 = fresh.cell(fresh_row, col).parse().expect("numeric cell");
                compared += 1;
                let verdict = if now <= ceiling { "ok" } else { "OVER BUDGET" };
                println!(
                    "  [{}] {}={key:>8} {label:>10}: {now:.1} (ceiling {ceiling:.1}, absolute) {verdict}",
                    g.id, g.key_label
                );
                if now > ceiling {
                    failures += 1;
                }
            }
            for &(label, col) in g.cols {
                let base = base_row[col];
                let now: f64 = fresh.cell(fresh_row, col).parse().expect("numeric cell");
                compared += 1;
                let failed = if g.exact {
                    let verdict = if now == base { "ok" } else { "CHANGED" };
                    println!(
                        "  [{}] {}={key:>8} {label:>12}: baseline {base}, now {now} (exact) {verdict}",
                        g.id, g.key_label
                    );
                    now != base
                } else {
                    let limit = base * (1.0 + tolerance_pct / 100.0) + slack_ms;
                    let verdict = if now <= limit { "ok" } else { "REGRESSED" };
                    println!(
                        "  [{}] {}={key:>8} {label:>10}: baseline {base:>8.1} ms, now {now:>8.1} ms (limit {limit:.1} ms) {verdict}",
                        g.id, g.key_label
                    );
                    now > limit
                };
                if failed {
                    failures += 1;
                }
            }
        }
    }

    if update {
        return;
    }
    if compared == 0 {
        eprintln!("bench_guard: nothing compared — baseline/fresh key sets are disjoint");
        std::process::exit(2);
    }
    if failures > 0 {
        eprintln!(
            "bench_guard: FAILED — {failures} of {compared} checks outside their envelope \
             (timed: {tolerance_pct}% +{slack_ms} ms; structural: exact)"
        );
        std::process::exit(1);
    }
    println!(
        "bench_guard: ok — {compared} checks within their envelopes \
         (timed: {tolerance_pct}% +{slack_ms} ms; structural: exact)"
    );
}

/// Extracts the first table's `"rows":[[...],...]` from a
/// `BENCH_<id>.json` document as numbers. Non-numeric cells (e.g. E20's
/// textual "certified" column) become `NaN` — the guarded columns are all
/// numeric, so a `NaN` is only ever compared if a guard misconfigures its
/// column indices, and `NaN` comparisons always fail loudly.
fn parse_first_rows(doc: &str) -> Option<Vec<Vec<f64>>> {
    let start = doc.find("\"rows\":[")? + "\"rows\":[".len();
    let rest = &doc[start..];
    // Rows end at the first `]]` that closes the outer array: scan with a
    // depth counter (cells contain no nested brackets or strings with `]`
    // in the headline table, and we stop before any later table).
    let mut depth = 1usize;
    let mut end = None;
    for (i, c) in rest.char_indices() {
        match c {
            '[' => depth += 1,
            ']' => {
                depth -= 1;
                if depth == 0 {
                    end = Some(i);
                    break;
                }
            }
            _ => {}
        }
    }
    let body = &rest[..end?];
    let mut rows = Vec::new();
    for row in body.split("],") {
        let row = row.trim().trim_start_matches('[').trim_end_matches(']');
        if row.is_empty() {
            continue;
        }
        let cells: Vec<f64> = row
            .split(',')
            .map(|c| c.trim().parse().unwrap_or(f64::NAN))
            .collect();
        rows.push(cells);
    }
    Some(rows)
}

#[cfg(test)]
mod tests {
    use super::parse_first_rows;

    #[test]
    fn parses_the_e15_document_shape() {
        let doc = r#"{"experiment":"e15","quick":false,"elapsed_ms":4778.1,"tables":[{"title":"t","headers":["n","edges","build ms","LID ms","msgs/node","sync rounds","mean sat"],"rows":[[10000,49985,120,136,9.8,9,0.688],[50000,249985,261,470,9.8,9,0.686]],"notes":[]},{"title":"phases","headers":["phase"],"rows":[["generate"]],"notes":[]}]}"#;
        let rows = parse_first_rows(doc).expect("parses");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][0], 10000.0);
        assert_eq!(rows[1][3], 470.0);
        // Only the first table is read — the string cell never trips it.
    }

    #[test]
    fn parses_the_e19_document_shape() {
        let doc = r#"{"experiment":"e19","quick":false,"elapsed_ms":9000.0,"tables":[{"title":"ba","headers":["batch %","events","repair ms","rebuild ms","speedup","dirty edges","dSigmaS"],"rows":[[0.1,20,0.4,11.2,28.0,260,-0.013],[1,200,2.1,11.5,5.5,2600,0.021]],"notes":[]},{"title":"er","headers":["batch %"],"rows":[[0.1]],"notes":[]}]}"#;
        let rows = parse_first_rows(doc).expect("parses");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][0], 0.1);
        assert_eq!(rows[1][3], 11.5);
    }

    #[test]
    fn parses_the_e20_document_shape() {
        let doc = r#"{"experiment":"e20","quick":false,"elapsed_ms":250.0,"tables":[{"title":"ba","headers":["n","edges","spans","roots","dag depth","crit len","crit latency","end time","sync rounds","max fanout","certified"],"rows":[[500,1990,3810,1500,7,6,91,91,7,72,"yes"],[1000,3990,7764,3000,7,7,101,101,7,98,"yes"]],"notes":[]},{"title":"er","headers":["n"],"rows":[[500]],"notes":[]}]}"#;
        let rows = parse_first_rows(doc).expect("parses");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][2], 3810.0); // spans
        assert_eq!(rows[1][5], 7.0); // crit len
        // The textual "certified" cell degrades to NaN instead of sinking
        // the document.
        assert!(rows[0][10].is_nan());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_first_rows("{}").is_none());
        assert!(parse_first_rows("no rows key at all").is_none());
    }
}
