//! matchd_bench — the client-side load driver for a running matchd.
//!
//! ```text
//! matchd_bench --addr 127.0.0.1:7311 --universe ba:2000,3,2,42 \
//!              [--clients 4] [--events 400] [--chunk 16] [--shutdown]
//! ```
//!
//! Spawns `--clients` threads, each owning the disjoint node partition
//! `i ≡ c (mod clients)` of the universe (the spec must match the
//! daemon's, or submissions reference unknown state and are rejected).
//! Each client submits its self-inverse event stream in `--chunk`-event
//! batches, retrying through BUSY, and the driver prints acknowledged
//! throughput, the p99 submission round trip, the backpressure tally
//! (BUSY count + total/average server-advised retry-after), and the
//! daemon's final epoch. `--shutdown` asks the daemon to stop gracefully
//! afterwards.
//!
//! BUSY is *expected* under load — it is the bounded queue pushing back,
//! and clients ride through it. A REJECTED outcome is not: it means the
//! submission itself was invalid (spec mismatch, protocol error), so the
//! driver reports it explicitly and exits nonzero.
//!
//! Exit codes: 0 success; 1 a client was rejected for a non-backpressure
//! reason or lost the daemon; 2 bad usage.

use owp_matchd::{client_stream, from_spec, MatchdClient, SubmitOutcome};
use owp_metrics::MetricsRegistry;
use std::time::{Duration, Instant};

fn usage() -> ! {
    eprintln!(
        "usage: matchd_bench --addr HOST:PORT --universe SPEC\n\
         \x20                    [--clients N] [--events N] [--chunk N] [--shutdown]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = None;
    let mut spec = None;
    let mut clients = 4usize;
    let mut events = 400usize;
    let mut chunk = 16usize;
    let mut shutdown = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || it.next().cloned().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--addr" => addr = Some(value()),
            "--universe" => spec = Some(value()),
            "--clients" => clients = value().parse().unwrap_or_else(|_| usage()),
            "--events" => events = value().parse().unwrap_or_else(|_| usage()),
            "--chunk" => chunk = value().parse().unwrap_or_else(|_| usage()),
            "--shutdown" => shutdown = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("matchd_bench: unknown flag {other:?}");
                usage();
            }
        }
    }
    let (addr, spec) = match (addr, spec) {
        (Some(a), Some(s)) => (a, s),
        _ => usage(),
    };
    if clients == 0 || chunk == 0 {
        usage();
    }
    let universe = from_spec(&spec).unwrap_or_else(|e| {
        eprintln!("matchd_bench: {e}");
        std::process::exit(2);
    });

    let registry = MetricsRegistry::new();
    let hist = registry.histogram("matchd_submit_wall_us");
    let t0 = Instant::now();
    let results: Vec<Result<(u64, u64, u64, u64), String>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let addr = addr.clone();
                let universe = &universe;
                let hist = hist.clone();
                s.spawn(move || -> Result<(u64, u64, u64, u64), String> {
                    let stream = client_stream(universe, c, clients, events);
                    let mut conn = MatchdClient::connect(addr.as_str())?;
                    let (mut acked, mut busy, mut retry_ms, mut last_epoch) =
                        (0u64, 0u64, 0u64, 0u64);
                    for batch in stream.chunks(chunk) {
                        loop {
                            let t = Instant::now();
                            match conn.submit(batch)? {
                                SubmitOutcome::Accepted { epoch } => {
                                    hist.observe(t.elapsed().as_micros() as u64);
                                    acked += batch.len() as u64;
                                    last_epoch = epoch;
                                    break;
                                }
                                SubmitOutcome::Busy { retry_after_ms } => {
                                    busy += 1;
                                    retry_ms += retry_after_ms as u64;
                                    std::thread::sleep(Duration::from_millis(
                                        retry_after_ms as u64,
                                    ));
                                }
                                SubmitOutcome::Rejected { error } => {
                                    return Err(format!("client {c} rejected: {error}"));
                                }
                            }
                        }
                    }
                    Ok((acked, busy, retry_ms, last_epoch))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    let mut acked = 0u64;
    let mut busy = 0u64;
    let mut retry_ms = 0u64;
    let mut rejected = 0usize;
    for r in &results {
        match r {
            Ok((a, b, r, _)) => {
                acked += a;
                busy += b;
                retry_ms += r;
            }
            Err(e) => {
                eprintln!("matchd_bench: {e}");
                rejected += 1;
            }
        }
    }
    let p99_ms = hist.quantile_upper_bound(0.99).unwrap_or(0) as f64 / 1e3;
    let events_per_s = acked as f64 / (wall_ms / 1e3).max(f64::MIN_POSITIVE);
    println!(
        "matchd_bench: {acked} events acked in {wall_ms:.1} ms ({events_per_s:.0} events/s), \
         p99 submit {p99_ms:.3} ms, {clients} clients"
    );
    if busy > 0 {
        println!(
            "matchd_bench: backpressure — {busy} BUSY retries, {retry_ms} ms server-advised \
             retry-after total ({:.1} ms avg)",
            retry_ms as f64 / busy as f64
        );
    } else {
        println!("matchd_bench: backpressure — none (0 BUSY retries)");
    }
    if rejected > 0 {
        eprintln!(
            "matchd_bench: {rejected} client(s) REJECTED for non-backpressure reasons \
             (see above) — the daemon refused submissions outright"
        );
    }

    let mut probe = match MatchdClient::connect(addr.as_str()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("matchd_bench: cannot reconnect for the epoch probe: {e}");
            std::process::exit(1);
        }
    };
    match probe.epoch() {
        Ok(info) => println!(
            "matchd_bench: daemon at epoch {} (sigma_s {:.6}, {} active, {} matched)",
            info.epoch, info.sigma_s, info.active, info.matched
        ),
        Err(e) => {
            eprintln!("matchd_bench: epoch probe failed: {e}");
            std::process::exit(1);
        }
    }
    if shutdown {
        match probe.shutdown() {
            Ok(epoch) => println!("matchd_bench: daemon acknowledged shutdown at epoch {epoch}"),
            Err(e) => {
                eprintln!("matchd_bench: shutdown failed: {e}");
                std::process::exit(1);
            }
        }
    }
    std::process::exit(if rejected > 0 { 1 } else { 0 });
}
