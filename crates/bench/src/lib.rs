//! # owp-bench — experiment harness
//!
//! Regenerates every table and figure of the reproduction (see
//! `EXPERIMENTS.md`). The paper itself contains no empirical evaluation —
//! only the worked Figure 1 — so E1 reproduces that figure exactly and
//! E2–E11 are the evaluation its theorems define (approximation ratios vs
//! the proven bounds, message/round complexity, baseline comparisons,
//! robustness).
//!
//! Run a single experiment:
//!
//! ```text
//! cargo run -p owp-bench --release --bin experiments -- e2
//! cargo run -p owp-bench --release --bin experiments -- all
//! cargo run -p owp-bench --release --bin experiments -- e4 --quick
//! ```
//!
//! Criterion micro-benchmarks live in `benches/`.

pub mod alloc_shim;
pub mod campaign;
pub mod experiments;
pub mod table;

pub use table::Table;

/// Sample mean.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (n − 1 denominator; 0 for < 2 samples).
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Minimum of a non-empty sample.
pub fn min(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert!((std_dev(&[2.0, 4.0]) - std::f64::consts::SQRT_2).abs() < 1e-12);
        assert_eq!(min(&[3.0, 1.0, 2.0]), 1.0);
    }
}
