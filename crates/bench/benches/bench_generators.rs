//! Criterion: topology generators and the satisfaction metric — the
//! per-experiment fixed costs of the harness.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use owp_graph::generators::{barabasi_albert, erdos_renyi, random_geometric, watts_strogatz};
use owp_graph::{NodeId, PreferenceTable};
use owp_matching::satisfaction::node_satisfaction;
use owp_matching::{BMatching, MatchingReport, Problem};
use owp_matching::lic::{lic, SelectionPolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    let n = 2000usize;
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("erdos_renyi_deg12", |b| {
        b.iter(|| erdos_renyi(n, 12.0 / (n as f64 - 1.0), &mut StdRng::seed_from_u64(1)))
    });
    group.bench_function("barabasi_albert_m6", |b| {
        b.iter(|| barabasi_albert(n, 6, &mut StdRng::seed_from_u64(2)))
    });
    group.bench_function("watts_strogatz_k12", |b| {
        b.iter(|| watts_strogatz(n, 12, 0.2, &mut StdRng::seed_from_u64(3)))
    });
    group.bench_function("random_geometric_r0.05", |b| {
        b.iter(|| random_geometric(n, 0.05, &mut StdRng::seed_from_u64(4)))
    });
    group.finish();
}

fn bench_preferences(c: &mut Criterion) {
    let g = erdos_renyi(2000, 0.006, &mut StdRng::seed_from_u64(5));
    let mut group = c.benchmark_group("preference_tables");
    group.bench_function("random_permutations", |b| {
        b.iter(|| PreferenceTable::random(&g, &mut StdRng::seed_from_u64(6)))
    });
    group.bench_function("by_score", |b| {
        b.iter(|| PreferenceTable::by_score(&g, |i, j| ((i.0 * 31) ^ j.0) as f64))
    });
    group.finish();
}

fn bench_satisfaction_metric(c: &mut Criterion) {
    let p = Problem::random_gnp(1000, 0.012, 4, 8);
    let m: BMatching = lic(&p, SelectionPolicy::InOrder);
    let mut group = c.benchmark_group("satisfaction");
    group.bench_function("full_report_n1000", |b| {
        b.iter(|| MatchingReport::compute(&p, &m))
    });
    group.bench_with_input(
        BenchmarkId::new("single_node", 0),
        &p,
        |b, p| {
            b.iter(|| node_satisfaction(&p.prefs, &p.quotas, NodeId(0), m.connections(NodeId(0))))
        },
    );
    group.finish();
}

criterion_group!(benches, bench_generators, bench_preferences, bench_satisfaction_metric);
criterion_main!(benches);
