//! Criterion: the exact-arithmetic ablation — rational vs f64 weight
//! comparisons, and full weight-table construction. Quantifies what the
//! "exact `EdgeKey` order" design choice costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use owp_graph::{PreferenceTable, Quotas};
use owp_matching::weights::{edges_by_weight_desc, EdgeWeights};
use owp_matching::{Problem, Rational};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_weight_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("weights_construction");
    for &n in &[200usize, 800] {
        let mut rng = StdRng::seed_from_u64(5);
        let g = owp_graph::generators::erdos_renyi(n, 0.05, &mut rng);
        let prefs = PreferenceTable::random(&g, &mut rng);
        let quotas = Quotas::uniform(&g, 4);
        group.bench_with_input(BenchmarkId::new("eq9_exact", n), &(), |b, _| {
            b.iter(|| EdgeWeights::compute(&g, &prefs, &quotas))
        });
    }
    group.finish();
}

fn bench_sort_rational_vs_f64(c: &mut Criterion) {
    let p = Problem::random_gnp(800, 0.05, 4, 3);
    let g = &p.graph;
    let w = &p.weights;
    let f64s: Vec<f64> = g.edges().map(|e| w.get_f64(e)).collect();

    let mut group = c.benchmark_group("weight_sort_ablation");
    group.bench_function("exact_edgekey_sort", |b| {
        b.iter(|| edges_by_weight_desc(g, w))
    });
    group.bench_function("f64_sort", |b| {
        b.iter(|| {
            let mut idx: Vec<usize> = (0..f64s.len()).collect();
            idx.sort_by(|&a, &c| f64s[c].partial_cmp(&f64s[a]).expect("no NaN"));
            idx
        })
    });
    group.finish();
}

/// The heart of the rank-kernel argument: answering "is edge `a` heavier
/// than edge `b`?" by dense `u32` rank compare vs exact `EdgeKey`
/// (`Rational` cross-multiplication) vs lossy `f64` compare, over the same
/// random pair stream on the same instance.
fn bench_compare_ablation(c: &mut Criterion) {
    let p = Problem::random_gnp(800, 0.05, 4, 3);
    let g = &p.graph;
    let w = &p.weights;
    let m = g.edge_count();
    let mut rng = StdRng::seed_from_u64(11);
    let pairs: Vec<(owp_graph::EdgeId, owp_graph::EdgeId)> = (0..4096)
        .map(|_| {
            let a = rng.gen_range(0..m);
            let b = rng.gen_range(0..m);
            (owp_graph::EdgeId(a as u32), owp_graph::EdgeId(b as u32))
        })
        .collect();
    let keys: Vec<_> = g.edges().map(|e| w.key(g, e)).collect();
    let f64s: Vec<f64> = g.edges().map(|e| w.get_f64(e)).collect();

    let mut group = c.benchmark_group("weight_compare_ablation");
    group.bench_function("rank_u32", |b| {
        b.iter(|| {
            pairs
                .iter()
                .filter(|&&(a, bb)| p.order.heavier(a, bb))
                .count()
        })
    });
    group.bench_function("exact_edgekey", |b| {
        b.iter(|| {
            pairs
                .iter()
                .filter(|&&(a, bb)| keys[a.index()] > keys[bb.index()])
                .count()
        })
    });
    group.bench_function("f64_lossy", |b| {
        b.iter(|| {
            pairs
                .iter()
                .filter(|&&(a, bb)| f64s[a.index()] > f64s[bb.index()])
                .count()
        })
    });
    group.finish();
}

fn bench_rational_ops(c: &mut Criterion) {
    let xs: Vec<Rational> = (1..1000i128)
        .map(|k| Rational::new(k * 7 % 113, 1 + k % 97))
        .collect();
    let mut group = c.benchmark_group("rational_ops");
    group.bench_function("pairwise_cmp", |b| {
        b.iter(|| {
            let mut less = 0usize;
            for w in xs.windows(2) {
                if w[0] < w[1] {
                    less += 1;
                }
            }
            less
        })
    });
    group.bench_function("pairwise_add", |b| {
        b.iter(|| {
            let mut acc = Rational::ZERO;
            for w in xs.windows(2) {
                acc = w[0] + w[1];
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_weight_construction,
    bench_sort_rational_vs_f64,
    bench_compare_ablation,
    bench_rational_ops
);
criterion_main!(benches);
