//! Criterion: LIC throughput as instance size grows, plus the
//! selection-policy ablation (same output, different traversal cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use owp_matching::lic::{lic, lic_profiled, lic_reference, SelectionPolicy};
use owp_matching::Problem;
use owp_telemetry::PhaseProfile;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_lic_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("lic_scaling");
    for &n in &[100usize, 400, 1600] {
        let p = Problem::random_gnp(n, 12.0 / (n as f64 - 1.0), 4, 42);
        group.throughput(Throughput::Elements(p.edge_count() as u64));
        group.bench_with_input(BenchmarkId::new("gnp_deg12_b4", n), &p, |b, p| {
            b.iter(|| lic(p, SelectionPolicy::InOrder))
        });
    }
    group.finish();
}

fn bench_lic_policies(c: &mut Criterion) {
    let p = Problem::random_gnp(800, 0.02, 4, 7);
    let mut group = c.benchmark_group("lic_policy_ablation");
    group.bench_function("in_order", |b| b.iter(|| lic(&p, SelectionPolicy::InOrder)));
    group.bench_function("reverse", |b| b.iter(|| lic(&p, SelectionPolicy::Reverse)));
    group.bench_function("random", |b| b.iter(|| lic(&p, SelectionPolicy::Random(1))));
    group.finish();
}

/// The headline number for the integer-rank kernel: LIC on a 10⁵-node
/// Barabási–Albert overlay (b = 4), rank-based worklist vs the key-based
/// reference implementation it replaced. Same output (see
/// `tests/rank_equivalence.rs`); only the representation differs.
fn bench_lic_large(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(42);
    let g = owp_graph::generators::barabasi_albert(100_000, 4, &mut rng);
    let p = Problem::random_over(g, 4, 99);

    // One profiled pass up front: where the milliseconds live inside LIC
    // (CSR build vs selection loop) on the headline instance. The profiled
    // entry point wraps whole phases, so it is also benchmarked below to
    // show the coarse timers cost nothing measurable.
    let mut prof = PhaseProfile::new();
    let _ = lic_profiled(&p, SelectionPolicy::InOrder, &mut prof);
    eprintln!("{}", prof.render());

    let mut group = c.benchmark_group("lic_large_ba_1e5");
    group.sample_size(10);
    group.throughput(Throughput::Elements(p.edge_count() as u64));
    group.bench_function("rank_kernel", |b| {
        b.iter(|| lic(&p, SelectionPolicy::InOrder))
    });
    group.bench_function("rank_kernel_profiled", |b| {
        b.iter(|| {
            let mut prof = PhaseProfile::new();
            lic_profiled(&p, SelectionPolicy::InOrder, &mut prof)
        })
    });
    group.bench_function("key_reference", |b| {
        b.iter(|| lic_reference(&p, SelectionPolicy::InOrder))
    });
    group.finish();
}

fn bench_quota_effect(c: &mut Criterion) {
    let mut group = c.benchmark_group("lic_quota_effect");
    for &b in &[1u32, 4, 16] {
        let p = Problem::random_gnp(800, 0.02, b, 11);
        group.bench_with_input(BenchmarkId::new("b", b), &p, |bench, p| {
            bench.iter(|| lic(p, SelectionPolicy::InOrder))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_lic_scaling,
    bench_lic_policies,
    bench_lic_large,
    bench_quota_effect
);
criterion_main!(benches);
