//! Criterion: branch & bound cost growth — how far the exact "OPT" solvers
//! scale, justifying the instance sizes used in E2/E3/E7.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use owp_matching::exact::{optimal_satisfaction, optimal_weight, DEFAULT_BUDGET};
use owp_matching::Problem;

fn bench_optimal_weight(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_weight_bnb");
    group.sample_size(10);
    for &n in &[8usize, 10, 12, 14] {
        let p = Problem::random_gnp(n, 0.5, 2, 21);
        group.bench_with_input(BenchmarkId::new("gnp_p0.5_b2", n), &p, |b, p| {
            b.iter(|| optimal_weight(p, DEFAULT_BUDGET))
        });
    }
    group.finish();
}

fn bench_optimal_satisfaction(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_satisfaction_bnb");
    group.sample_size(10);
    for &n in &[8usize, 10, 12] {
        let p = Problem::random_gnp(n, 0.5, 2, 22);
        group.bench_with_input(BenchmarkId::new("gnp_p0.5_b2", n), &p, |b, p| {
            b.iter(|| optimal_satisfaction(p, DEFAULT_BUDGET))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_optimal_weight, bench_optimal_satisfaction);
criterion_main!(benches);
