//! Criterion: the simulated distributed protocol end to end — event queue,
//! message routing and protocol logic — versus network size and latency
//! model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use owp_core::{run_lid, run_lid_sync};
use owp_matching::Problem;
use owp_simnet::{LatencyModel, SimConfig};

fn bench_lid_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("lid_scaling");
    group.sample_size(20);
    for &n in &[100usize, 400, 1600] {
        let p = Problem::random_gnp(n, 12.0 / (n as f64 - 1.0), 4, 42);
        group.throughput(Throughput::Elements(p.edge_count() as u64));
        group.bench_with_input(BenchmarkId::new("async_unit_latency", n), &p, |b, p| {
            b.iter(|| run_lid(p, SimConfig::with_seed(1)))
        });
        group.bench_with_input(BenchmarkId::new("sync_rounds", n), &p, |b, p| {
            b.iter(|| run_lid_sync(p))
        });
    }
    group.finish();
}

fn bench_latency_models(c: &mut Criterion) {
    let p = Problem::random_gnp(400, 0.03, 4, 9);
    let mut group = c.benchmark_group("lid_latency_models");
    group.sample_size(20);
    for (name, m) in [
        ("constant", LatencyModel::Constant { ticks: 10 }),
        ("uniform", LatencyModel::Uniform { lo: 1, hi: 20 }),
        ("exponential", LatencyModel::Exponential { mean: 10.0 }),
        ("lognormal", LatencyModel::LogNormal { mu: 2.0, sigma: 0.8 }),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| run_lid(&p, SimConfig::with_seed(2).latency(m.clone())))
        });
    }
    group.finish();
}

/// The telemetry claim, measured: a run with the runtime switch off must
/// cost the same as the untraced run, and a fully traced run shows the
/// price of capturing every transport event.
fn bench_telemetry_overhead(c: &mut Criterion) {
    let p = Problem::random_gnp(400, 0.03, 4, 9);
    let mut group = c.benchmark_group("lid_telemetry_overhead");
    group.sample_size(20);
    group.bench_function("off", |b| {
        b.iter(|| run_lid(&p, SimConfig::with_seed(2)))
    });
    group.bench_function("on_full_trace", |b| {
        b.iter(|| run_lid(&p, SimConfig::with_seed(2).telemetry()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_lid_scaling,
    bench_latency_models,
    bench_telemetry_overhead
);
criterion_main!(benches);
