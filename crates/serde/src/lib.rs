//! Offline vendored subset of the `serde` API.
//!
//! The real `serde` is unreachable in this build environment (no registry
//! route), and nothing in the workspace actually serializes — the derives on
//! public types exist so downstream users *could* plug in a serializer once
//! the real crate is swapped back in. These marker traits keep that API
//! surface compiling; the `derive` feature provides `#[derive(Serialize)]` /
//! `#[derive(Deserialize)]` emitting empty impls (see `serde_derive`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Marker for types that are serializable once a real serde is linked.
pub trait Serialize {}

/// Marker for types that are deserializable once a real serde is linked.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

// The derive macro emits `impl ::serde::Serialize`, which is unresolvable
// from inside this crate itself; alias self so the in-crate tests compile.
#[cfg(test)]
extern crate self as serde;

#[cfg(test)]
mod tests {
    #[derive(super::Serialize, super::Deserialize)]
    struct Plain {
        _x: u32,
    }

    #[derive(crate::Serialize, crate::Deserialize)]
    enum Kinds {
        _A,
        _B { _y: String },
    }

    fn assert_serialize<T: crate::Serialize>() {}
    fn assert_deserialize<T: for<'de> crate::Deserialize<'de>>() {}

    #[test]
    fn derives_emit_impls() {
        assert_serialize::<Plain>();
        assert_deserialize::<Plain>();
        assert_serialize::<Kinds>();
        assert_deserialize::<Kinds>();
    }
}
