//! Privacy accounting: what LID discloses, and what stays private.
//!
//! The paper's pitch: peers "achieve a guaranteed level of collective
//! quality ... by disclosing a limited amount of metric information to their
//! immediate neighbours, but not the metric itself". Concretely, node `i`
//! reveals exactly one scalar per neighbour — the static satisfaction
//! increment `ΔS̄_i^j` of eq. 5 — and nothing else: not the metric, not the
//! scores, not the rest of the list. This module quantifies that.

use owp_matching::Problem;

/// Disclosure accounting for one instance.
#[derive(Clone, Debug, PartialEq, serde::Serialize)]
pub struct DisclosureReport {
    /// Scalars (one `ΔS̄` per incident edge per direction) sent in the
    /// initial exchange — `2m` in total.
    pub scalars_disclosed: u64,
    /// Average scalars disclosed per node (= average degree).
    pub per_node_avg: f64,
    /// Scalars a naive design would disclose if every node shipped its whole
    /// preference list (with ranks) to every neighbour: `Σ_i d_i²`.
    pub naive_full_list_cost: u64,
    /// What a neighbour `j` learns about `i`'s list from `ΔS̄_i^j`: the rank
    /// `R_i(j)` is recoverable only if `j` also knows `|L_i|` and `b_i`;
    /// with just the scalar, `j` learns a single point of a normalized
    /// ranking and none of the relative order of `i`'s other neighbours.
    pub ranks_directly_revealed_per_edge: u32,
}

impl DisclosureReport {
    /// Computes the accounting for `problem`.
    pub fn compute(problem: &Problem) -> Self {
        let g = &problem.graph;
        let m = g.edge_count() as u64;
        let n = g.node_count();
        let naive: u64 = g.nodes().map(|i| (g.degree(i) as u64).pow(2)).sum();
        DisclosureReport {
            scalars_disclosed: 2 * m,
            per_node_avg: if n == 0 { 0.0 } else { 2.0 * m as f64 / n as f64 },
            naive_full_list_cost: naive,
            ranks_directly_revealed_per_edge: 1,
        }
    }

    /// Disclosure saving versus the naive full-list exchange (≥ 1; equals
    /// the average degree for regular graphs).
    pub fn saving_factor(&self) -> f64 {
        if self.scalars_disclosed == 0 {
            1.0
        } else {
            self.naive_full_list_cost as f64 / self.scalars_disclosed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owp_graph::generators::complete;

    #[test]
    fn counts_match_structure() {
        let p = Problem::random_over(complete(10), 3, 1);
        let r = DisclosureReport::compute(&p);
        assert_eq!(r.scalars_disclosed, 2 * 45);
        assert!((r.per_node_avg - 9.0).abs() < 1e-12);
        assert_eq!(r.naive_full_list_cost, 10 * 81);
        // K10: each node would naively ship 9 ranks to 9 neighbours.
        assert!((r.saving_factor() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_degenerate() {
        let p = Problem::random_gnp(5, 0.0, 2, 1);
        let r = DisclosureReport::compute(&p);
        assert_eq!(r.scalars_disclosed, 0);
        assert_eq!(r.saving_factor(), 1.0);
    }
}
