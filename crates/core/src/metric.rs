//! Suitability metrics — how peers privately rank their neighbours.
//!
//! The paper's introduction motivates preference lists built from "the
//! node's distance, interests, recommendations, transaction history or
//! available resources", each peer free to pick its own metric and keep it
//! private. This module implements one metric per motivation plus a
//! composite, and the glue that turns metrics into preference lists.

use owp_graph::{Graph, NodeId, PreferenceTable};
use std::collections::HashMap;
use std::sync::Arc;

/// A private suitability metric: higher score = more desirable neighbour.
///
/// Scores must be NaN-free; ties are broken deterministically by node id
/// when lists are built.
pub trait SuitabilityMetric {
    /// Score `other` from `me`'s point of view.
    fn score(&self, me: NodeId, other: NodeId) -> f64;

    /// Human-readable metric name (for reports).
    fn name(&self) -> &'static str {
        "metric"
    }
}

/// Proximity metric: closer peers are better (negated Euclidean distance).
#[derive(Clone, Debug)]
pub struct DistanceMetric {
    /// Peer positions (e.g. network coordinates), indexed by node id.
    pub positions: Vec<(f64, f64)>,
}

impl SuitabilityMetric for DistanceMetric {
    fn score(&self, me: NodeId, other: NodeId) -> f64 {
        let (x1, y1) = self.positions[me.index()];
        let (x2, y2) = self.positions[other.index()];
        -(((x1 - x2).powi(2) + (y1 - y2).powi(2)).sqrt())
    }
    fn name(&self) -> &'static str {
        "distance"
    }
}

/// Interest metric: cosine similarity of interest vectors.
#[derive(Clone, Debug)]
pub struct InterestSimilarity {
    /// Per-peer interest vectors (all the same dimension).
    pub interests: Vec<Vec<f64>>,
}

impl SuitabilityMetric for InterestSimilarity {
    fn score(&self, me: NodeId, other: NodeId) -> f64 {
        let a = &self.interests[me.index()];
        let b = &self.interests[other.index()];
        let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
        let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
        let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            dot / (na * nb)
        }
    }
    fn name(&self) -> &'static str {
        "interest-similarity"
    }
}

/// Transaction-history metric: peers I had good exchanges with score higher.
#[derive(Clone, Debug, Default)]
pub struct TransactionHistory {
    /// `(me, other) → cumulative success score`; missing pairs score 0.
    history: HashMap<(u32, u32), f64>,
}

impl TransactionHistory {
    /// Empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records (adds) a transaction outcome from `me`'s viewpoint.
    pub fn record(&mut self, me: NodeId, other: NodeId, outcome: f64) {
        *self.history.entry((me.0, other.0)).or_insert(0.0) += outcome;
    }
}

impl SuitabilityMetric for TransactionHistory {
    fn score(&self, me: NodeId, other: NodeId) -> f64 {
        self.history.get(&(me.0, other.0)).copied().unwrap_or(0.0)
    }
    fn name(&self) -> &'static str {
        "transaction-history"
    }
}

/// Resource metric: peers advertising more capacity (bandwidth, storage…)
/// score higher regardless of who is asking.
#[derive(Clone, Debug)]
pub struct ResourceCapacity {
    /// Advertised capacity per peer.
    pub capacity: Vec<f64>,
}

impl SuitabilityMetric for ResourceCapacity {
    fn score(&self, _me: NodeId, other: NodeId) -> f64 {
        self.capacity[other.index()]
    }
    fn name(&self) -> &'static str {
        "resource-capacity"
    }
}

/// Deterministic pseudo-random metric — models a peer whose tastes look
/// arbitrary from the outside (the fully heterogeneous case the paper's
/// cyclic-preferences discussion worries about).
#[derive(Clone, Copy, Debug)]
pub struct RandomTaste {
    /// Seed making the taste reproducible.
    pub seed: u64,
}

impl SuitabilityMetric for RandomTaste {
    fn score(&self, me: NodeId, other: NodeId) -> f64 {
        // SplitMix64 over (seed, me, other) — stable, well mixed.
        let mut z = self
            .seed
            .wrapping_add(0x9E3779B97F4A7C15u64.wrapping_mul(1 + me.0 as u64))
            .wrapping_add(0xBF58476D1CE4E5B9u64.wrapping_mul(1 + other.0 as u64));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }
    fn name(&self) -> &'static str {
        "random-taste"
    }
}

/// Weighted combination of metrics (e.g. 0.7·distance + 0.3·history).
pub struct Composite {
    parts: Vec<(f64, Arc<dyn SuitabilityMetric + Send + Sync>)>,
}

impl Composite {
    /// Builds a composite from `(weight, metric)` parts.
    pub fn new(parts: Vec<(f64, Arc<dyn SuitabilityMetric + Send + Sync>)>) -> Self {
        assert!(!parts.is_empty(), "composite needs at least one part");
        Composite { parts }
    }
}

impl SuitabilityMetric for Composite {
    fn score(&self, me: NodeId, other: NodeId) -> f64 {
        self.parts
            .iter()
            .map(|(w, m)| w * m.score(me, other))
            .sum()
    }
    fn name(&self) -> &'static str {
        "composite"
    }
}

/// Builds preference lists where node `i` ranks its neighbourhood with
/// `metrics[i]` — every peer may follow its own private metric, exactly the
/// fully distributed scenario of the paper.
pub fn preferences_from_metrics(
    g: &Graph,
    metrics: &[Arc<dyn SuitabilityMetric + Send + Sync>],
) -> PreferenceTable {
    assert_eq!(metrics.len(), g.node_count(), "one metric per node");
    PreferenceTable::by_score(g, |i, j| metrics[i.index()].score(i, j))
}

/// Builds preference lists where every node shares one metric.
pub fn preferences_from_metric(
    g: &Graph,
    metric: &(dyn SuitabilityMetric + Send + Sync),
) -> PreferenceTable {
    PreferenceTable::by_score(g, |i, j| metric.score(i, j))
}

#[cfg(test)]
mod tests {
    use super::*;
    use owp_graph::generators::complete;

    #[test]
    fn distance_prefers_closer() {
        let m = DistanceMetric {
            positions: vec![(0.0, 0.0), (0.1, 0.0), (0.9, 0.9)],
        };
        assert!(m.score(NodeId(0), NodeId(1)) > m.score(NodeId(0), NodeId(2)));
    }

    #[test]
    fn cosine_similarity_extremes() {
        let m = InterestSimilarity {
            interests: vec![vec![1.0, 0.0], vec![1.0, 0.0], vec![0.0, 1.0], vec![0.0, 0.0]],
        };
        assert!((m.score(NodeId(0), NodeId(1)) - 1.0).abs() < 1e-12);
        assert!(m.score(NodeId(0), NodeId(2)).abs() < 1e-12);
        assert_eq!(m.score(NodeId(0), NodeId(3)), 0.0, "zero vector scores 0");
    }

    #[test]
    fn history_accumulates_and_is_directional() {
        let mut m = TransactionHistory::new();
        m.record(NodeId(0), NodeId(1), 2.0);
        m.record(NodeId(0), NodeId(1), 1.0);
        assert_eq!(m.score(NodeId(0), NodeId(1)), 3.0);
        assert_eq!(m.score(NodeId(1), NodeId(0)), 0.0, "history is one-sided");
        assert_eq!(m.score(NodeId(0), NodeId(2)), 0.0);
    }

    #[test]
    fn random_taste_is_deterministic_and_heterogeneous() {
        let m = RandomTaste { seed: 7 };
        assert_eq!(m.score(NodeId(1), NodeId(2)), m.score(NodeId(1), NodeId(2)));
        assert_ne!(m.score(NodeId(1), NodeId(2)), m.score(NodeId(2), NodeId(1)));
        let s = m.score(NodeId(3), NodeId(4));
        assert!((0.0..1.0).contains(&s));
    }

    #[test]
    fn composite_weights_parts() {
        let cap = Arc::new(ResourceCapacity {
            capacity: vec![0.0, 1.0, 10.0],
        });
        let taste = Arc::new(RandomTaste { seed: 1 });
        let c = Composite::new(vec![(1.0, cap), (0.001, taste)]);
        // Capacity dominates with these weights.
        assert!(c.score(NodeId(0), NodeId(2)) > c.score(NodeId(0), NodeId(1)));
        assert_eq!(c.name(), "composite");
    }

    #[test]
    fn preferences_from_metric_ranks_by_score() {
        let g = complete(4);
        let cap = ResourceCapacity {
            capacity: vec![0.0, 5.0, 3.0, 9.0],
        };
        let prefs = preferences_from_metric(&g, &cap);
        // Node 0 ranks: 3 (9.0) ≻ 1 (5.0) ≻ 2 (3.0).
        assert_eq!(prefs.list(NodeId(0)), &[NodeId(3), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn per_node_metrics_differ() {
        let g = complete(3);
        let metrics: Vec<Arc<dyn SuitabilityMetric + Send + Sync>> = vec![
            Arc::new(RandomTaste { seed: 1 }),
            Arc::new(RandomTaste { seed: 2 }),
            Arc::new(ResourceCapacity {
                capacity: vec![7.0, 1.0, 1.0],
            }),
        ];
        let prefs = preferences_from_metrics(&g, &metrics);
        // Node 2 (capacity metric) must rank node 0 first.
        assert_eq!(prefs.list(NodeId(2))[0], NodeId(0));
    }

    #[test]
    #[should_panic(expected = "one metric per node")]
    fn metric_count_must_match() {
        let g = complete(3);
        let metrics: Vec<Arc<dyn SuitabilityMetric + Send + Sync>> =
            vec![Arc::new(RandomTaste { seed: 1 })];
        preferences_from_metrics(&g, &metrics);
    }
}
