//! LID — Local Information-based Distributed algorithm (paper Algorithm 1).
//!
//! Every node runs the same state machine over four sets:
//!
//! * `U` — unresolved neighbours (no reply yet / not contacted);
//! * `P` — neighbours this node has PROPosed to;
//! * `A` — neighbours that have approached this node with a PROP;
//! * `K` — locked (established) connections.
//!
//! A node proposes to its `b_i` heaviest-weight neighbours; a *mutual*
//! proposal locks the edge at both ends; an explicit `REJ` makes the sender
//! move to its next-ranked candidate; once `P \ K = ∅` (all proposals
//! locked), the node rejects everyone left in `U` and terminates.
//!
//! Two gaps in the paper's pseudocode are fixed here, both flagged inline:
//! a `PROP` arriving *after* the receiver terminated must still be answered
//! `REJ` (otherwise the sender waits forever), and the lock step (line 12)
//! is applied repeatedly until no mutual proposal remains.
//!
//! The module runs the protocol on either engine of `owp-simnet`
//! ([`run_lid`] — asynchronous, [`run_lid_sync`] — synchronous rounds) and
//! extracts the resulting [`BMatching`], asserting the `K`-sets of the two
//! endpoints of every locked edge agree.
//!
//! Observability: the state machine emits typed [`NodeEvent`]s (proposal,
//! rejection, lock, termination) through `Context::emit` — compiled only
//! under the `telemetry` feature, free otherwise. [`run_lid_traced`]
//! captures the full interleaved event log, [`run_lid_sync_series`] samples
//! a per-round convergence trajectory, and [`replay_lid_trace`] certifies a
//! recorded trace is complete by reconstructing the matching from it.

use owp_graph::NodeId;
use owp_matching::{matching_totals, BMatching, Problem};
use owp_simnet::{
    Context, EventLog, MessageKind, NetStats, NodeEvent, Payload, Protocol, RunOutcome, SimConfig,
    Simulator, SyncRunner, TelemetryEvent,
};
use owp_telemetry::{CausalDag, ConvergenceSample, ConvergenceSeries};
use std::collections::BTreeSet;

/// The message kinds of Algorithm 1 (plus the retransmission layer's ACK).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LidMessage {
    /// "I propose we establish a connection."
    Prop,
    /// "I will not connect to you (my quota is filled or better options won)."
    Rej,
    /// Reliable-LID only: "your proposal is locked on my side" — semantically
    /// a `Prop` for the receiver's state machine, but *never replied to*,
    /// which is what terminates duplicate-confirmation chains (plain
    /// Algorithm 1 never sends this).
    Ack,
}

impl Payload for LidMessage {
    fn kind(&self) -> MessageKind {
        match self {
            LidMessage::Prop => MessageKind::Prop,
            LidMessage::Rej => MessageKind::Rej,
            LidMessage::Ack => MessageKind::Ack,
        }
    }
}

/// Per-node state machine of Algorithm 1.
#[derive(Debug)]
pub struct LidNode {
    id: NodeId,
    quota: u32,
    /// Neighbours sorted by the weight list (edge weight descending under
    /// the strict [`owp_matching::EdgeKey`] order, realized as ascending
    /// [`owp_matching::EdgeRank`] integer ranks) — the auxiliary list the
    /// paper builds from the exchanged `ΔS̄` values.
    ranked: Vec<NodeId>,
    /// Cursor into `ranked`: everything before it is proposed-to or resolved.
    cursor: usize,
    u: BTreeSet<NodeId>,
    p: BTreeSet<NodeId>,
    a: BTreeSet<NodeId>,
    k: BTreeSet<NodeId>,
}

impl LidNode {
    /// Creates the Algorithm 1 state machine for node `id` of `problem`.
    pub(crate) fn new_for(problem: &Problem, id: NodeId) -> Self {
        Self::new(problem, id)
    }

    fn new(problem: &Problem, id: NodeId) -> Self {
        let g = &problem.graph;
        // Rank ascending = weight descending: the per-node candidate list
        // sorts on dense `u32` ranks from the precomputed EdgeOrder kernel,
        // so no `Rational` comparison happens after Problem construction.
        let mut ranked: Vec<(owp_matching::EdgeRank, NodeId)> = g
            .neighbors(id)
            .iter()
            .map(|&(j, e)| (problem.order.rank(e), j))
            .collect();
        ranked.sort_unstable_by_key(|&(rank, _)| rank);
        LidNode {
            id,
            quota: problem.quotas.get(id),
            ranked: ranked.into_iter().map(|(_, j)| j).collect(),
            cursor: 0,
            u: g.neighbor_ids(id).collect(),
            p: BTreeSet::new(),
            a: BTreeSet::new(),
            k: BTreeSet::new(),
        }
    }

    /// `topRanked(U \ P)`: the heaviest-weight neighbour not yet proposed to
    /// and still unresolved. Monotone cursor: nodes leave `U` permanently and
    /// are never removed from "was proposed to" status without leaving `U`.
    fn top_ranked(&mut self) -> Option<NodeId> {
        while self.cursor < self.ranked.len() {
            let v = self.ranked[self.cursor];
            if self.u.contains(&v) && !self.p.contains(&v) {
                return Some(v);
            }
            self.cursor += 1;
        }
        None
    }

    /// Lock every mutual proposal (Algorithm 1 lines 12–14, applied to a
    /// fixpoint — the pseudocode's `if ∃v` is run once per delivery, which
    /// can strand a second simultaneous match).
    fn lock_mutuals(&mut self, ctx: &mut Context<LidMessage>) {
        loop {
            let v = self
                .p
                .iter()
                .find(|v| !self.k.contains(v) && self.a.contains(v))
                .copied();
            let Some(v) = v else { break };
            self.u.remove(&v);
            self.a.remove(&v);
            self.k.insert(v);
            ctx.emit(NodeEvent::EdgeLocked { peer: v });
        }
    }

    /// Algorithm 1 lines 15–16: all proposals resolved → reject everyone
    /// still unresolved and terminate. (`U = ∅` with nothing to reject —
    /// e.g. zero quota, no neighbours — also counts as termination.)
    fn finish_if_done(&mut self, ctx: &mut Context<LidMessage>) {
        if self.p.iter().all(|v| self.k.contains(v)) {
            for &v in &self.u {
                ctx.send(v, LidMessage::Rej);
                ctx.emit(NodeEvent::RejSent { to: v });
            }
            self.u.clear();
            ctx.emit(NodeEvent::NodeTerminated);
        }
    }

    /// The locked connections after termination.
    pub fn locked(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.k.iter().copied()
    }

    /// `true` iff the connection to `v` is locked (`v ∈ K`).
    pub fn is_locked(&self, v: NodeId) -> bool {
        self.k.contains(&v)
    }

    /// Neighbours with an outstanding (unanswered) proposal (`P \ K`) —
    /// exactly the messages a retransmission layer must keep alive.
    pub fn outstanding_proposals(&self) -> Vec<NodeId> {
        self.p
            .iter()
            .filter(|v| !self.k.contains(v))
            .copied()
            .collect()
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Cold-boot amnesia for crash-restart faults: all volatile state is
    /// wiped and the state machine returns to its initial configuration
    /// (cursor at the top of the ranked list, every neighbour unresolved).
    /// The ranked candidate list itself survives — it is derived from the
    /// exchanged `ΔS̄` values, i.e. durable problem data, not protocol state.
    pub(crate) fn reset(&mut self) {
        self.cursor = 0;
        self.u = self.ranked.iter().copied().collect();
        self.p.clear();
        self.a.clear();
        self.k.clear();
    }
}

impl Protocol for LidNode {
    type Message = LidMessage;

    fn on_start(&mut self, ctx: &mut Context<LidMessage>) {
        // Lines 2–3: propose to the top b_i candidates.
        for _ in 0..self.quota {
            let Some(v) = self.top_ranked() else { break };
            self.p.insert(v);
            ctx.send(v, LidMessage::Prop);
            ctx.emit(NodeEvent::PropSent { to: v });
        }
        // A node with b_i = 0 (or no neighbours) terminates immediately,
        // rejecting everyone — otherwise its neighbours would wait forever.
        self.finish_if_done(ctx);
    }

    fn on_message(&mut self, from: NodeId, msg: LidMessage, ctx: &mut Context<LidMessage>) {
        if self.u.is_empty() {
            // Terminated. The paper's pseudocode does not handle a PROP that
            // arrives after line 16; without a REJ reply the proposer would
            // deadlock, so we answer here (documented deviation).
            if msg == LidMessage::Prop && !self.k.contains(&from) {
                ctx.send(from, LidMessage::Rej);
                ctx.emit(NodeEvent::RejSent { to: from });
            }
            return;
        }
        match msg {
            // An ACK certifies the sender holds our proposal locked; for the
            // state machine it is exactly an incoming proposal (line 6).
            LidMessage::Prop | LidMessage::Ack => {
                self.a.insert(from);
            }
            LidMessage::Rej => {
                // Lines 7–11. A REJ can never come from a locked partner:
                // locking is mutual-proposal only and REJs are terminal.
                debug_assert!(!self.k.contains(&from), "REJ from locked partner");
                self.u.remove(&from);
                self.a.remove(&from);
                if self.p.remove(&from) {
                    if let Some(v) = self.top_ranked() {
                        self.p.insert(v);
                        ctx.send(v, LidMessage::Prop);
                        ctx.emit(NodeEvent::PropSent { to: v });
                    }
                }
            }
        }
        self.lock_mutuals(ctx);
        self.finish_if_done(ctx);
    }

    fn is_terminated(&self) -> bool {
        self.u.is_empty()
    }
}

/// Result of one LID execution.
#[derive(Debug)]
pub struct LidResult {
    /// The matching defined by the nodes' `K` sets.
    pub matching: BMatching,
    /// Network statistics (PROP/REJ counts are under those kind labels).
    pub stats: NetStats,
    /// Simulated end time (asynchronous runs) in ticks.
    pub end_time: u64,
    /// Rounds (synchronous runs; 0 for asynchronous runs).
    pub rounds: u64,
    /// `true` iff the network quiesced and every node locally terminated.
    pub terminated: bool,
    /// Messages of the initial `ΔS̄` exchange the paper prescribes before
    /// the algorithm proper (2 per edge); not simulated, reported for
    /// message-complexity accounting.
    pub init_messages: u64,
    /// Pairs where one endpoint locked the connection but the other did not.
    /// Always 0 under the paper's reliable-network assumption; message loss
    /// can produce them (experiment E11) — such half-locked pairs are *not*
    /// part of [`LidResult::matching`].
    pub asymmetric_locks: usize,
}

fn build_nodes(problem: &Problem) -> Vec<LidNode> {
    problem
        .graph
        .nodes()
        .map(|i| LidNode::new(problem, i))
        .collect()
}

/// Extracts the matching from the nodes' `K` sets. Only pairs locked by
/// *both* endpoints become matching edges; one-sided locks (possible only
/// under injected message loss) are counted separately.
pub(crate) fn extract_matching_from<'a, I: Iterator<Item = &'a LidNode>>(
    problem: &Problem,
    nodes: I,
) -> (BMatching, usize) {
    let g = &problem.graph;
    let locked: Vec<BTreeSet<NodeId>> = nodes.map(|n| n.k.clone()).collect();
    let mut edges = Vec::new();
    let mut asymmetric = 0usize;
    for (i, ks) in locked.iter().enumerate() {
        let i = NodeId(i as u32);
        for &j in ks {
            if !locked[j.index()].contains(&i) {
                asymmetric += 1;
                continue;
            }
            if i < j {
                edges.push(g.edge_between(i, j).expect("locked pair is an edge"));
            }
        }
    }
    (BMatching::from_edges(problem, edges), asymmetric)
}

/// Runs LID on the asynchronous simulator. LID only messages along overlay
/// edges, so the simulator gets the topology up front and FIFO clamping runs
/// on the dense per-link array.
pub fn run_lid(problem: &Problem, config: SimConfig) -> LidResult {
    let mut sim = Simulator::with_topology(build_nodes(problem), config, &problem.graph);
    let out: RunOutcome = sim.run();
    let terminated = out.quiescent && sim.nodes().all(|n| n.is_terminated());
    let (matching, asymmetric_locks) = extract_matching_from(problem, sim.nodes());
    LidResult {
        matching,
        stats: sim.stats().clone(),
        end_time: out.end_time,
        rounds: 0,
        terminated,
        init_messages: 2 * problem.edge_count() as u64,
        asymmetric_locks,
    }
}

/// Runs LID on the synchronous-round engine (deterministic; used for round
/// complexity measurements).
pub fn run_lid_sync(problem: &Problem) -> LidResult {
    let mut runner = SyncRunner::new(build_nodes(problem));
    let out = runner.run();
    let terminated = out.quiescent && runner.nodes().all(|n| n.is_terminated());
    let (matching, asymmetric_locks) = extract_matching_from(problem, runner.nodes());
    LidResult {
        matching,
        stats: runner.stats().clone(),
        end_time: 0,
        rounds: out.rounds,
        terminated,
        init_messages: 2 * problem.edge_count() as u64,
        asymmetric_locks,
    }
}

/// Runs LID asynchronously with telemetry recording forced on, returning the
/// result together with the structured event log (transport events always;
/// per-node [`NodeEvent`]s too when the `telemetry` feature is compiled).
pub fn run_lid_traced(problem: &Problem, config: SimConfig) -> (LidResult, EventLog) {
    let config = config.telemetry();
    let mut sim = Simulator::with_topology(build_nodes(problem), config, &problem.graph);
    let out: RunOutcome = sim.run();
    let terminated = out.quiescent && sim.nodes().all(|n| n.is_terminated());
    let (matching, asymmetric_locks) = extract_matching_from(problem, sim.nodes());
    let result = LidResult {
        matching,
        stats: sim.stats().clone(),
        end_time: out.end_time,
        rounds: 0,
        terminated,
        init_messages: 2 * problem.edge_count() as u64,
        asymmetric_locks,
    };
    (result, sim.take_telemetry())
}

/// Runs LID asynchronously with telemetry forced on and reconstructs the
/// happens-before DAG from the recorded span events.
///
/// The returned [`CausalDag`] is the empirical Lemma 5 certificate: on a
/// live trace `dag.verify()` is empty (span ids are assigned in causal
/// order, so the parent forest cannot contain a cycle), and
/// `dag.critical_path()` is the longest PROP/REJ dependency chain — the
/// latency-limiting sequence of handler activations behind
/// [`LidResult::end_time`].
pub fn run_lid_causal(problem: &Problem, config: SimConfig) -> (LidResult, EventLog, CausalDag) {
    let (result, log) = run_lid_traced(problem, config);
    let dag = CausalDag::from_log(&log);
    (result, log, dag)
}

fn sample_sync_round(
    problem: &Problem,
    runner: &SyncRunner<LidNode>,
    series: &mut ConvergenceSeries,
) {
    let (m, _) = extract_matching_from(problem, runner.nodes());
    let (matched_edges, total_weight, satisfaction_total) = matching_totals(problem, &m);
    series.push(ConvergenceSample {
        round: runner.rounds(),
        matched_edges,
        total_weight,
        satisfaction_total,
        messages_sent: runner.stats().sent,
        in_flight: runner.pending_count(),
        terminated_fraction: runner.terminated_fraction(),
    });
}

/// Runs LID on the synchronous-round engine, sampling the convergence
/// trajectory after `on_start` (round 0) and after every round: matched
/// edges, total weight, Σ `S_i`, cumulative sends, in-flight messages and
/// the terminated-node fraction.
///
/// The final sample describes the returned [`LidResult::matching`] through
/// the same summation path as [`owp_matching::MatchingReport`], so its
/// totals agree with a full report **bit-for-bit** (asserted by the e18
/// consistency test).
pub fn run_lid_sync_series(problem: &Problem) -> (LidResult, ConvergenceSeries) {
    const MAX_ROUNDS: u64 = 1_000_000;
    let mut runner = SyncRunner::new(build_nodes(problem));
    let mut series = ConvergenceSeries::new();
    runner.start();
    sample_sync_round(problem, &runner, &mut series);
    let mut quiescent = true;
    loop {
        if runner.rounds() >= MAX_ROUNDS {
            quiescent = runner.pending_count() == 0;
            break;
        }
        if !runner.round() {
            break;
        }
        sample_sync_round(problem, &runner, &mut series);
    }
    let terminated = quiescent && runner.nodes().all(|n| n.is_terminated());
    let (matching, asymmetric_locks) = extract_matching_from(problem, runner.nodes());
    let result = LidResult {
        matching,
        stats: runner.stats().clone(),
        end_time: 0,
        rounds: runner.rounds(),
        terminated,
        init_messages: 2 * problem.edge_count() as u64,
        asymmetric_locks,
    };
    (result, series)
}

/// Replays a recorded LID event log through fresh Algorithm 1 state
/// machines and returns the matching they reconstruct.
///
/// Every node's `on_start` runs first (its sends are discarded — the trace
/// already contains their delivered counterparts); then each
/// [`TelemetryEvent::Delivered`] is fed to its destination node in trace
/// order. Drops, dead letters and timer events are skipped: deliveries are
/// exactly what drives the state machines. A trace from a terminated run
/// therefore reconstructs the *identical* edge set — the trace-completeness
/// certificate of the telemetry layer.
///
/// # Panics
/// Panics if the log contains a delivery of a non-LID message kind.
pub fn replay_lid_trace(problem: &Problem, log: &EventLog) -> BMatching {
    let mut nodes = build_nodes(problem);
    for node in nodes.iter_mut() {
        let mut ctx = Context::detached(node.id(), 0);
        node.on_start(&mut ctx);
    }
    for ev in log.events() {
        if let TelemetryEvent::Delivered {
            time,
            from,
            to,
            kind,
        } = *ev
        {
            let msg = match kind {
                MessageKind::Prop => LidMessage::Prop,
                MessageKind::Rej => LidMessage::Rej,
                MessageKind::Ack => LidMessage::Ack,
                MessageKind::Other(label) => {
                    panic!("not a LID trace: unexpected message kind {label:?}")
                }
            };
            let mut ctx = Context::detached(to, time);
            nodes[to.index()].on_message(from, msg, &mut ctx);
        }
    }
    extract_matching_from(problem, nodes.iter()).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use owp_graph::generators::{complete, star};
    use owp_graph::{PreferenceTable, Quotas};
    use owp_matching::lic::{lic, SelectionPolicy};
    use owp_matching::verify;
    use owp_simnet::{FaultPlan, LatencyModel};

    #[test]
    fn terminates_and_is_valid_async() {
        for seed in 0..10 {
            let p = Problem::random_gnp(30, 0.3, 2, seed);
            let r = run_lid(&p, SimConfig::with_seed(seed));
            assert!(r.terminated, "seed {seed}: LID must terminate (Lemma 5)");
            assert_eq!(r.asymmetric_locks, 0, "reliable network locks symmetrically");
            verify::check_valid(&p, &r.matching).expect("valid");
            verify::check_maximal(&p, &r.matching).expect("maximal");
        }
    }

    #[test]
    fn equals_lic_under_unit_latency() {
        for seed in 0..10 {
            let p = Problem::random_gnp(25, 0.35, 3, seed);
            let d = run_lid(&p, SimConfig::with_seed(seed));
            let c = lic(&p, SelectionPolicy::InOrder);
            assert!(
                d.matching.same_edges(&c),
                "seed {seed}: LID and LIC must select identical edges (Lemmas 4 & 6)"
            );
        }
    }

    #[test]
    fn equals_lic_under_heavy_asynchrony() {
        for seed in 0..10 {
            let p = Problem::random_gnp(20, 0.4, 2, 100 + seed);
            let c = lic(&p, SelectionPolicy::InOrder);
            for (li, latency) in [
                LatencyModel::Uniform { lo: 1, hi: 100 },
                LatencyModel::Exponential { mean: 25.0 },
                LatencyModel::LogNormal { mu: 2.0, sigma: 1.0 },
            ]
            .into_iter()
            .enumerate()
            {
                let cfg = SimConfig::with_seed(seed * 31 + li as u64).latency(latency);
                let d = run_lid(&p, cfg);
                assert!(d.terminated);
                assert!(
                    d.matching.same_edges(&c),
                    "seed {seed}, latency #{li}: asynchrony changed the result"
                );
            }
        }
    }

    #[test]
    fn sync_engine_agrees_with_async() {
        for seed in 0..8 {
            let p = Problem::random_gnp(20, 0.35, 2, 200 + seed);
            let a = run_lid(&p, SimConfig::with_seed(seed));
            let s = run_lid_sync(&p);
            assert!(s.terminated);
            assert!(s.rounds > 0);
            assert!(a.matching.same_edges(&s.matching));
        }
    }

    #[test]
    fn zero_quota_and_isolated_nodes_terminate() {
        let g = star(5);
        let prefs = PreferenceTable::by_node_id(&g);
        let quotas = Quotas::from_vec(&g, vec![0, 1, 1, 1, 1]);
        let p = Problem::new(g, prefs, quotas);
        let r = run_lid(&p, SimConfig::with_seed(1));
        assert!(r.terminated);
        assert_eq!(r.matching.size(), 0, "hub rejected everyone");
        // Every leaf proposed once; the hub rejected each leaf twice — once
        // in its termination broadcast at t=0 and once replying to the
        // leaf's PROP that was already in flight (crossing messages).
        assert_eq!(r.stats.sent_of(MessageKind::Prop), 4);
        assert_eq!(r.stats.sent_of(MessageKind::Rej), 8);
    }

    #[test]
    fn mutual_top_pair_locks_with_two_messages() {
        // Two nodes only: single edge, both propose, both lock. No REJ.
        let g = complete(2);
        let prefs = PreferenceTable::by_node_id(&g);
        let quotas = Quotas::uniform(&g, 1);
        let p = Problem::new(g, prefs, quotas);
        let r = run_lid(&p, SimConfig::with_seed(3));
        assert!(r.terminated);
        assert_eq!(r.matching.size(), 1);
        assert_eq!(r.stats.sent_of(MessageKind::Prop), 2);
        assert_eq!(r.stats.sent_of(MessageKind::Rej), 0);
    }

    #[test]
    fn message_complexity_is_linear_in_edges() {
        // Each node sends at most one PROP to each neighbour and at most one
        // REJ to each neighbour: ≤ 2 messages per edge direction.
        for seed in 0..5 {
            let p = Problem::random_gnp(40, 0.2, 3, 300 + seed);
            let r = run_lid(&p, SimConfig::with_seed(seed));
            assert!(r.terminated);
            let cap = 4 * p.edge_count() as u64;
            assert!(
                r.stats.sent <= cap,
                "seed {seed}: {} messages > 4m = {cap}",
                r.stats.sent
            );
        }
    }

    #[test]
    fn survives_message_loss_without_hanging_the_simulator() {
        // With loss the guarantee (and Lemma 5) is void — nodes can wait
        // forever — but the *simulator* must still quiesce, and whatever was
        // locked must be symmetric (extract_matching asserts that).
        let p = Problem::random_gnp(20, 0.3, 2, 9);
        let cfg = SimConfig::with_seed(9).faults(FaultPlan::with_drop_probability(0.2));
        let r = run_lid(&p, cfg);
        verify::check_valid(&p, &r.matching).expect("double-locked pairs form a valid matching");
        let _ = (r.terminated, r.asymmetric_locks); // typically false / > 0
    }

    #[test]
    fn quota_one_complete_graph_is_a_perfect_matching_when_even() {
        let p = Problem::random_over(complete(8), 1, 4);
        let r = run_lid(&p, SimConfig::with_seed(4));
        assert!(r.terminated);
        assert_eq!(r.matching.size(), 4);
    }

    #[test]
    fn traced_run_matches_untraced_and_replays_exactly() {
        for seed in 0..6 {
            let p = Problem::random_gnp(24, 0.3, 2, 500 + seed);
            let cfg = SimConfig::with_seed(seed).latency(LatencyModel::Uniform { lo: 1, hi: 9 });
            let (r, log) = run_lid_traced(&p, cfg.clone());
            assert!(r.terminated);
            // Telemetry must not perturb the run itself.
            let plain = run_lid(&p, cfg);
            assert!(r.matching.same_edges(&plain.matching));
            assert_eq!(r.stats.sent, plain.stats.sent);
            // Transport-level counts agree between log and counters.
            assert_eq!(log.deliveries().count() as u64, r.stats.delivered);
            assert_eq!(log.with_tag("sent").count() as u64, r.stats.sent);
            // Trace completeness: the delivered events alone reconstruct
            // the exact final edge set.
            let replayed = replay_lid_trace(&p, &log);
            assert!(
                replayed.same_edges(&r.matching),
                "seed {seed}: replay diverged from the live run"
            );
        }
    }

    #[test]
    fn causal_run_is_certified_and_explains_the_matching() {
        use owp_telemetry::EdgeOutcome;
        for seed in 0..5 {
            let p = Problem::random_gnp(24, 0.3, 2, 900 + seed);
            let cfg = SimConfig::with_seed(seed).latency(LatencyModel::Uniform { lo: 1, hi: 9 });
            let (r, _log, dag) = run_lid_causal(&p, cfg);
            assert!(r.terminated);
            // Empirical Lemma 5 certificate: the happens-before forest of a
            // live run is acyclic and temporally consistent.
            assert!(dag.is_certified(), "seed {seed}: {:?}", dag.verify());
            // Every send got exactly one span.
            assert_eq!(dag.len() as u64, r.stats.sent);
            // Roots are exactly the on_start sends (all at t = 0).
            assert!(dag.roots() > 0);
            assert!(dag
                .spans()
                .iter()
                .filter(|s| s.parent.is_none())
                .all(|s| s.sent == 0));
            // The critical path ends no later than the run itself and is a
            // genuine chain (positive length, monotone hop times).
            let path = dag.critical_path();
            assert!(!path.is_empty());
            assert!(path.end_time <= r.end_time);
            for w in path.hops.windows(2) {
                assert!(w[1].sent >= w[0].delivered.expect("interior hops delivered"));
            }
            // Edge lifecycles: locked pairs are exactly the final matching.
            let locked = dag
                .edge_lifecycles()
                .iter()
                .filter(|l| l.outcome == EdgeOutcome::Locked)
                .count();
            assert_eq!(locked, r.matching.size(), "seed {seed}");
        }
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn traced_run_captures_node_transitions() {
        let p = Problem::random_gnp(20, 0.35, 2, 11);
        let (r, log) = run_lid_traced(&p, SimConfig::with_seed(11));
        assert!(r.terminated);
        // Every locked edge produces one EdgeLocked event at each endpoint.
        assert_eq!(log.with_tag("edge_locked").count(), 2 * r.matching.size());
        // Every node eventually terminates, exactly once.
        assert_eq!(log.with_tag("node_terminated").count(), p.node_count());
        // PropSent events mirror the PROP counter.
        assert_eq!(
            log.with_tag("prop_sent").count() as u64,
            r.stats.sent_of(MessageKind::Prop)
        );
        // RejSent events mirror the REJ counter.
        assert_eq!(
            log.with_tag("rej_sent").count() as u64,
            r.stats.sent_of(MessageKind::Rej)
        );
    }

    #[test]
    fn sync_series_trajectory_is_monotone_and_lands_on_the_result() {
        for seed in 0..5 {
            let p = Problem::random_gnp(22, 0.3, 2, 700 + seed);
            let (r, series) = run_lid_sync_series(&p);
            assert!(r.terminated);
            // Same outcome as the plain sync runner.
            let plain = run_lid_sync(&p);
            assert!(r.matching.same_edges(&plain.matching));
            assert_eq!(r.rounds, plain.rounds);
            // One sample per round plus the round-0 sample.
            assert_eq!(series.samples().len() as u64, r.rounds + 1);
            // Matched-edge count and sends are monotone non-decreasing;
            // locked edges are never unlocked.
            for w in series.samples().windows(2) {
                assert!(w[1].matched_edges >= w[0].matched_edges);
                assert!(w[1].messages_sent >= w[0].messages_sent);
                assert!(w[1].round > w[0].round);
            }
            // The final row describes the returned matching bit-for-bit.
            let last = series.last().expect("non-empty series");
            let (edges, weight, sat) = matching_totals(&p, &r.matching);
            assert_eq!(last.matched_edges, edges);
            assert_eq!(last.total_weight.to_bits(), weight.to_bits());
            assert_eq!(last.satisfaction_total.to_bits(), sat.to_bits());
            assert_eq!(last.in_flight, 0);
            assert_eq!(last.terminated_fraction, 1.0);
        }
    }
}
