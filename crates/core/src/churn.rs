//! Dynamic overlays: joins, leaves and local repair.
//!
//! The paper's conclusion leaves dynamicity ("joins/leaves of peers") as
//! future work and conjectures the same greedy strategy extends to it. This
//! module implements that extension: peers can leave (dropping their
//! connections) and join, and [`ChurnSim::repair`] re-runs the
//! locally-heaviest greedy on the *residual* instance — only free quota and
//! unmatched edges participate, existing connections are never torn down.
//! Experiment E9 measures how much satisfaction this local repair recovers
//! relative to a full rebuild.

use owp_graph::NodeId;
use owp_matching::satisfaction::node_satisfaction;
use owp_matching::{BMatching, Problem};
use owp_graph::EdgeId;

/// Outcome of one repair pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RepairStats {
    /// Edges added by the repair.
    pub edges_added: usize,
}

/// A dynamic overlay: a fixed potential-connection universe over which peers
/// are activated/deactivated, with incremental repair of the matching.
pub struct ChurnSim<'p> {
    problem: &'p Problem,
    active: Vec<bool>,
    matching: BMatching,
}

impl<'p> ChurnSim<'p> {
    /// Starts with every peer active and the given initial matching (e.g.
    /// a fresh LID run).
    pub fn new(problem: &'p Problem, initial: BMatching) -> Self {
        ChurnSim {
            problem,
            active: vec![true; problem.node_count()],
            matching: initial,
        }
    }

    /// `true` iff peer `i` is currently active.
    pub fn is_active(&self, i: NodeId) -> bool {
        self.active[i.index()]
    }

    /// The current matching.
    pub fn matching(&self) -> &BMatching {
        &self.matching
    }

    /// Peer `i` leaves: all its connections are dropped (its partners regain
    /// quota) and it stops participating.
    pub fn leave(&mut self, i: NodeId) {
        assert!(self.active[i.index()], "{i:?} is not active");
        self.active[i.index()] = false;
        let partners: Vec<NodeId> = self.matching.connections(i).to_vec();
        for j in partners {
            let e = self
                .problem
                .graph
                .edge_between(i, j)
                .expect("connection is an edge");
            self.matching.remove(&self.problem.graph, e);
        }
    }

    /// Peer `i` (re)joins with empty connections.
    pub fn join(&mut self, i: NodeId) {
        assert!(!self.active[i.index()], "{i:?} is already active");
        self.active[i.index()] = true;
    }

    /// Local repair: run the locally-heaviest greedy over the residual
    /// instance — edges between *active* nodes that both have free quota —
    /// keeping all existing connections. This is exactly the paper's greedy
    /// restricted to the sub-instance the churn exposed, so the Lemma 4
    /// structure holds relative to the residual pool.
    pub fn repair(&mut self) -> RepairStats {
        let g = &self.problem.graph;
        let w = &self.problem.weights;
        // Candidate edges, heaviest first.
        let mut candidates: Vec<EdgeId> = g
            .edges()
            .filter(|&e| {
                if self.matching.contains(e) {
                    return false;
                }
                let (u, v) = g.endpoints(e);
                self.active[u.index()] && self.active[v.index()]
            })
            .collect();
        candidates.sort_by_key(|&e| std::cmp::Reverse(w.key(g, e)));

        let mut added = 0;
        for e in candidates {
            let (u, v) = g.endpoints(e);
            let u_free = self.matching.degree(u) < self.problem.quotas.get(u) as usize;
            let v_free = self.matching.degree(v) < self.problem.quotas.get(v) as usize;
            if u_free && v_free {
                self.matching.insert(self.problem, e);
                added += 1;
            }
        }
        RepairStats { edges_added: added }
    }

    /// Total true satisfaction over *active* peers.
    pub fn active_satisfaction(&self) -> f64 {
        self.problem
            .nodes()
            .filter(|&i| self.active[i.index()])
            .map(|i| {
                node_satisfaction(
                    &self.problem.prefs,
                    &self.problem.quotas,
                    i,
                    self.matching.connections(i),
                )
            })
            .sum()
    }

    /// Number of active peers.
    pub fn active_count(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owp_matching::baselines::global_greedy;
    use owp_matching::verify;

    fn setup(seed: u64) -> (Problem, BMatching) {
        let p = Problem::random_gnp(30, 0.3, 3, seed);
        let m = global_greedy(&p);
        (p, m)
    }

    #[test]
    fn leave_frees_partner_quota_and_repair_refills() {
        let (p, m) = setup(1);
        let mut sim = ChurnSim::new(&p, m);
        let before = sim.active_satisfaction();

        // Evict the 3 busiest nodes.
        let mut busiest: Vec<NodeId> = p.nodes().collect();
        busiest.sort_by_key(|&i| std::cmp::Reverse(sim.matching().degree(i)));
        for &i in &busiest[..3] {
            sim.leave(i);
        }
        let after_leave = sim.active_satisfaction();
        let stats = sim.repair();
        let after_repair = sim.active_satisfaction();

        assert!(after_repair >= after_leave - 1e-12);
        assert!(stats.edges_added > 0 || after_leave >= before - 1e-12);
        verify::check_valid(&p, sim.matching()).expect("valid after repair");
        // No active pair with double free quota may remain.
        for e in p.graph.edges() {
            if sim.matching().contains(e) {
                continue;
            }
            let (u, v) = p.graph.endpoints(e);
            if sim.is_active(u) && sim.is_active(v) {
                let uf = sim.matching().degree(u) < p.quotas.get(u) as usize;
                let vf = sim.matching().degree(v) < p.quotas.get(v) as usize;
                assert!(!(uf && vf), "repair left an addable edge");
            }
        }
    }

    #[test]
    fn rejoin_and_repair_restores_participation() {
        let (p, m) = setup(2);
        let mut sim = ChurnSim::new(&p, m);
        let victim = NodeId(0);
        let before_degree = sim.matching().degree(victim);
        sim.leave(victim);
        assert_eq!(sim.matching().degree(victim), 0);
        sim.repair();
        sim.join(victim);
        sim.repair();
        // Victim reconnects as far as its (still-free) neighbours allow.
        assert!(sim.matching().degree(victim) <= p.quotas.get(victim) as usize);
        let _ = before_degree;
        verify::check_valid(&p, sim.matching()).expect("valid");
    }

    #[test]
    #[should_panic(expected = "not active")]
    fn double_leave_panics() {
        let (p, m) = setup(3);
        let mut sim = ChurnSim::new(&p, m);
        sim.leave(NodeId(1));
        sim.leave(NodeId(1));
    }

    #[test]
    fn active_count_tracks() {
        let (p, m) = setup(4);
        let mut sim = ChurnSim::new(&p, m);
        assert_eq!(sim.active_count(), 30);
        sim.leave(NodeId(5));
        assert_eq!(sim.active_count(), 29);
        sim.join(NodeId(5));
        assert_eq!(sim.active_count(), 30);
    }
}
