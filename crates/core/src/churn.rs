//! Dynamic overlays: joins, leaves and certified incremental repair.
//!
//! The paper's conclusion leaves dynamicity ("joins/leaves of peers") as
//! future work and conjectures the same greedy strategy extends to it.
//! This module used to approximate that with a *residual-only* repair
//! pass (re-running the greedy over unmatched edges while never tearing a
//! connection down), which drifts away from the true locally-heaviest
//! matching as churn accumulates: an evicted peer's partners keep the
//! lighter substitutes they grabbed even after better options reappear.
//!
//! It is now a thin facade over [`owp_engine::Engine`], which maintains
//! the **exact** matching continuously: every [`ChurnSim::leave`] /
//! [`ChurnSim::join`] applies one event batch and the bounded repair
//! finishes before the call returns, certified bit-identical to a
//! from-scratch run ([`ChurnSim::certify`]). There is no separate repair
//! step any more — [`ChurnSim::repair`] survives only as a deprecated
//! no-op shim.

use owp_engine::{DeltaReport, Engine, EngineError, EngineEvent};
use owp_graph::NodeId;
use owp_matching::{BMatching, Problem};

/// Outcome of one (deprecated) repair pass. The engine repairs inside
/// every event application, so the standalone pass has nothing to do.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RepairStats {
    /// Edges added by the repair (always 0 under the engine).
    pub edges_added: usize,
}

/// A dynamic overlay: a fixed potential-connection universe over which
/// peers are activated/deactivated, with the exact locally-heaviest
/// matching maintained through every membership change.
pub struct ChurnSim {
    engine: Engine,
}

impl ChurnSim {
    /// Starts with every peer active and the canonical (LIC) matching of
    /// the full instance — the state a fresh LID/LIC run converges to.
    pub fn new(problem: &Problem) -> Self {
        ChurnSim {
            engine: Engine::new(problem.clone()),
        }
    }

    /// `true` iff peer `i` is currently active.
    pub fn is_active(&self, i: NodeId) -> bool {
        self.engine.dynamic().is_active(i)
    }

    /// The current matching (always the exact locally-heaviest matching
    /// of the active sub-instance).
    pub fn matching(&self) -> &BMatching {
        self.engine.matching()
    }

    /// The underlying engine, for epoch/report access.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Peer `i` leaves: its connections dissolve, its partners regain
    /// quota, and the matching is repaired before the call returns.
    /// Errors (instead of panicking) if `i` is not active or unknown.
    pub fn leave(&mut self, i: NodeId) -> Result<DeltaReport, EngineError> {
        self.engine.apply(EngineEvent::NodeLeave { node: i })
    }

    /// Peer `i` (re)joins; the repaired matching reconnects it as far as
    /// the locally-heaviest order allows. Errors (instead of panicking)
    /// if `i` is already active or unknown.
    pub fn join(&mut self, i: NodeId) -> Result<DeltaReport, EngineError> {
        self.engine.apply(EngineEvent::NodeJoin { node: i })
    }

    /// Deprecated: the engine repairs within [`ChurnSim::leave`] /
    /// [`ChurnSim::join`], so there is never residual work left. Kept so
    /// old call sequences still type-check; always reports 0 additions.
    #[deprecated(note = "repair happens inside leave/join; this is a no-op")]
    pub fn repair(&mut self) -> RepairStats {
        RepairStats { edges_added: 0 }
    }

    /// Checks the certified-repair invariant: the maintained matching
    /// equals a from-scratch LIC run on the current active sub-instance.
    pub fn certify(&self) -> Result<(), String> {
        self.engine.certify()
    }

    /// Total true satisfaction over *active* peers (maintained
    /// incrementally by the engine).
    pub fn active_satisfaction(&self) -> f64 {
        self.engine.total_satisfaction()
    }

    /// Number of active peers.
    pub fn active_count(&self) -> usize {
        self.engine.dynamic().active_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owp_matching::verify;

    fn setup(seed: u64) -> Problem {
        Problem::random_gnp(30, 0.3, 3, seed)
    }

    #[test]
    fn leave_frees_partner_quota_and_stays_exact() {
        let p = setup(1);
        let mut sim = ChurnSim::new(&p);
        sim.certify().expect("initial state is canonical");

        // Evict the 3 busiest nodes.
        let mut busiest: Vec<NodeId> = p.nodes().collect();
        busiest.sort_by_key(|&i| std::cmp::Reverse(sim.matching().degree(i)));
        for &i in &busiest[..3] {
            let report = sim.leave(i).expect("active node leaves");
            assert!(report.edges_removed.len() >= sim.matching().degree(i));
            assert_eq!(sim.matching().degree(i), 0, "leaver keeps no connections");
        }
        sim.certify().expect("exact after churn");
        verify::check_valid(&p, sim.matching()).expect("valid after churn");
        // Exactness subsumes maximality: no active pair with double free
        // quota may remain.
        for e in p.graph.edges() {
            if sim.matching().contains(e) {
                continue;
            }
            let (u, v) = p.graph.endpoints(e);
            if sim.is_active(u) && sim.is_active(v) {
                let uf = sim.matching().degree(u) < p.quotas.get(u) as usize;
                let vf = sim.matching().degree(v) < p.quotas.get(v) as usize;
                assert!(!(uf && vf), "an addable edge was left behind");
            }
        }
    }

    #[test]
    fn rejoin_restores_the_original_matching() {
        let p = setup(2);
        let mut sim = ChurnSim::new(&p);
        let original = sim.matching().clone();
        let victim = NodeId(0);
        sim.leave(victim).expect("leave");
        assert_eq!(sim.matching().degree(victim), 0);
        sim.join(victim).expect("rejoin");
        // Continuous exact repair means a full round-trip is lossless —
        // the residual-only pass could not guarantee this.
        assert!(sim.matching().same_edges(&original));
        sim.certify().expect("exact after round-trip");
        verify::check_valid(&p, sim.matching()).expect("valid");
    }

    #[test]
    fn leave_and_join_report_errors_instead_of_panicking() {
        let p = setup(3);
        let mut sim = ChurnSim::new(&p);
        sim.leave(NodeId(1)).expect("first leave");
        assert_eq!(
            sim.leave(NodeId(1)).unwrap_err(),
            EngineError::NotActive(NodeId(1))
        );
        assert_eq!(
            sim.join(NodeId(2)).unwrap_err(),
            EngineError::AlreadyActive(NodeId(2))
        );
        assert_eq!(
            sim.leave(NodeId(999)).unwrap_err(),
            EngineError::UnknownNode(NodeId(999))
        );
        // Failed calls leave the state untouched.
        assert_eq!(sim.active_count(), 29);
        sim.certify().expect("still exact after rejected events");
    }

    #[test]
    #[allow(deprecated)]
    fn repair_shim_is_a_noop() {
        let p = setup(4);
        let mut sim = ChurnSim::new(&p);
        sim.leave(NodeId(5)).expect("leave");
        let before = sim.matching().clone();
        let stats = sim.repair();
        assert_eq!(stats, RepairStats { edges_added: 0 });
        assert!(sim.matching().same_edges(&before));
    }

    #[test]
    fn active_count_and_satisfaction_track() {
        let p = setup(5);
        let mut sim = ChurnSim::new(&p);
        assert_eq!(sim.active_count(), 30);
        let s0 = sim.active_satisfaction();
        assert!(s0 > 0.0);
        sim.leave(NodeId(5)).expect("leave");
        assert_eq!(sim.active_count(), 29);
        assert!(sim.active_satisfaction() <= s0 + 1e-12);
        sim.join(NodeId(5)).expect("join");
        assert_eq!(sim.active_count(), 30);
        assert!((sim.active_satisfaction() - s0).abs() < 1e-9);
    }
}
