//! The high-level overlay-construction API — deliverable (a) of the
//! reproduction: "peers establish connections with other peers based on some
//! suitability metric", with the collective quality guarantee of Theorem 3.

use crate::lid::{run_lid, run_lid_sync, LidResult};
use crate::metric::{preferences_from_metrics, SuitabilityMetric};
use owp_graph::{Graph, NodeId, PreferenceTable, Quotas};
use owp_matching::bounds::overall_bound;
use owp_matching::{BMatching, MatchingReport, Problem};
use owp_simnet::{NetStats, SimConfig};
use std::sync::Arc;

/// Fluent builder for an overlay-with-preferences instance.
///
/// ```
/// use owp_core::overlay::OverlayBuilder;
/// use owp_core::metric::RandomTaste;
/// use owp_graph::generators::erdos_renyi;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let g = erdos_renyi(50, 0.2, &mut StdRng::seed_from_u64(1));
/// let overlay = OverlayBuilder::new(g)
///     .default_metric(RandomTaste { seed: 7 })
///     .uniform_quota(3)
///     .build()
///     .run(Default::default());
/// assert!(overlay.lid.terminated);
/// ```
pub struct OverlayBuilder {
    graph: Graph,
    metrics: Vec<Option<Arc<dyn SuitabilityMetric + Send + Sync>>>,
    default_metric: Option<Arc<dyn SuitabilityMetric + Send + Sync>>,
    quotas: Option<Quotas>,
    explicit_prefs: Option<PreferenceTable>,
}

impl OverlayBuilder {
    /// Starts building an overlay over the potential-connection graph `g`.
    pub fn new(graph: Graph) -> Self {
        let n = graph.node_count();
        OverlayBuilder {
            graph,
            metrics: vec![None; n],
            default_metric: None,
            quotas: None,
            explicit_prefs: None,
        }
    }

    /// Sets the metric used by every peer that has no individual one.
    pub fn default_metric<M: SuitabilityMetric + Send + Sync + 'static>(mut self, m: M) -> Self {
        self.default_metric = Some(Arc::new(m));
        self
    }

    /// Gives peer `i` its own private metric (the heterogeneous scenario).
    pub fn metric_for<M: SuitabilityMetric + Send + Sync + 'static>(
        mut self,
        i: NodeId,
        m: M,
    ) -> Self {
        self.metrics[i.index()] = Some(Arc::new(m));
        self
    }

    /// Bypasses metrics entirely with explicit preference lists.
    pub fn preferences(mut self, prefs: PreferenceTable) -> Self {
        self.explicit_prefs = Some(prefs);
        self
    }

    /// Uniform connection quota `b` (clamped per node to its degree).
    pub fn uniform_quota(mut self, b: u32) -> Self {
        self.quotas = Some(Quotas::uniform(&self.graph, b));
        self
    }

    /// Explicit per-node quotas.
    pub fn quotas(mut self, q: Quotas) -> Self {
        self.quotas = Some(q);
        self
    }

    /// Resolves metrics into preference lists and bundles the [`Problem`].
    ///
    /// # Panics
    /// Panics if neither explicit preferences nor any metric covers a node,
    /// or if no quota was configured.
    pub fn build(self) -> OverlayNetwork {
        let prefs = if let Some(p) = self.explicit_prefs {
            p
        } else {
            let default = self.default_metric;
            let metrics: Vec<Arc<dyn SuitabilityMetric + Send + Sync>> = self
                .metrics
                .into_iter()
                .enumerate()
                .map(|(i, m)| {
                    m.or_else(|| default.clone()).unwrap_or_else(|| {
                        panic!("node n{i} has no metric and no default was set")
                    })
                })
                .collect();
            preferences_from_metrics(&self.graph, &metrics)
        };
        let quotas = self.quotas.expect("a quota configuration is required");
        OverlayNetwork {
            problem: Problem::new(self.graph, prefs, quotas),
        }
    }
}

/// A fully specified overlay instance, ready to run the protocol.
pub struct OverlayNetwork {
    /// The underlying matching problem (graph + preferences + quotas +
    /// eq. 9 weights).
    pub problem: Problem,
}

impl OverlayNetwork {
    /// Runs the distributed LID protocol under the given network conditions
    /// and returns the constructed overlay.
    pub fn run(&self, config: SimConfig) -> Overlay {
        let lid = run_lid(&self.problem, config);
        Overlay::from_lid(&self.problem, lid)
    }

    /// Runs LID on the synchronous-round engine.
    pub fn run_sync(&self) -> Overlay {
        let lid = run_lid_sync(&self.problem);
        Overlay::from_lid(&self.problem, lid)
    }
}

/// The constructed overlay: who is connected to whom, with quality metrics.
pub struct Overlay {
    /// Raw protocol result (matching, termination flag, message stats).
    pub lid: LidResult,
    /// Quality report (satisfaction, weight, fairness).
    pub report: MatchingReport,
    /// Theorem 3's guaranteed fraction of optimal total satisfaction for
    /// this instance's `b_max`.
    pub guaranteed_fraction: f64,
}

impl Overlay {
    fn from_lid(problem: &Problem, lid: LidResult) -> Self {
        let report = MatchingReport::compute(problem, &lid.matching);
        let guaranteed_fraction = if problem.bmax() >= 1 {
            overall_bound(problem.bmax())
        } else {
            1.0
        };
        Overlay {
            lid,
            report,
            guaranteed_fraction,
        }
    }

    /// Established connections of peer `i`.
    pub fn connections(&self, i: NodeId) -> &[NodeId] {
        self.lid.matching.connections(i)
    }

    /// The matching as a whole.
    pub fn matching(&self) -> &BMatching {
        &self.lid.matching
    }

    /// Network statistics of the construction run.
    pub fn stats(&self) -> &NetStats {
        &self.lid.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::{DistanceMetric, RandomTaste, ResourceCapacity};
    use owp_graph::generators::{complete, random_geometric};
    use owp_matching::verify;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn builder_with_default_metric() {
        let g = complete(10);
        let overlay = OverlayBuilder::new(g)
            .default_metric(RandomTaste { seed: 3 })
            .uniform_quota(2)
            .build()
            .run(SimConfig::with_seed(1));
        assert!(overlay.lid.terminated);
        assert!((0.25..=1.0).contains(&overlay.guaranteed_fraction));
        assert!(overlay.report.satisfaction_total > 0.0);
    }

    #[test]
    fn heterogeneous_metrics_per_node() {
        let g = complete(6);
        let net = OverlayBuilder::new(g)
            .default_metric(RandomTaste { seed: 1 })
            .metric_for(
                NodeId(0),
                ResourceCapacity {
                    capacity: vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0],
                },
            )
            .uniform_quota(2)
            .build();
        // Node 0's list is capacity-ordered: 5 ≻ 4 ≻ 3 ≻ 2 ≻ 1.
        assert_eq!(net.problem.prefs.list(NodeId(0))[0], NodeId(5));
        let overlay = net.run(SimConfig::with_seed(2));
        assert!(overlay.lid.terminated);
        verify::check_valid(&net.problem, overlay.matching()).expect("valid");
    }

    #[test]
    fn geometric_overlay_with_distance_metric() {
        let gg = random_geometric(60, 0.3, &mut StdRng::seed_from_u64(4));
        let positions = gg.positions.clone();
        let overlay = OverlayBuilder::new(gg.graph)
            .default_metric(DistanceMetric { positions })
            .uniform_quota(3)
            .build()
            .run(SimConfig::with_seed(5));
        assert!(overlay.lid.terminated);
        assert_eq!(overlay.lid.asymmetric_locks, 0);
    }

    #[test]
    fn sync_and_async_agree() {
        let g = complete(12);
        let net = OverlayBuilder::new(g)
            .default_metric(RandomTaste { seed: 9 })
            .uniform_quota(3)
            .build();
        let a = net.run(SimConfig::with_seed(6));
        let s = net.run_sync();
        assert!(a.matching().same_edges(s.matching()));
        assert!(s.lid.rounds > 0);
    }

    #[test]
    #[should_panic(expected = "no metric")]
    fn missing_metric_panics() {
        let g = complete(3);
        OverlayBuilder::new(g).uniform_quota(1).build();
    }

    #[test]
    #[should_panic(expected = "quota configuration")]
    fn missing_quota_panics() {
        let g = complete(3);
        OverlayBuilder::new(g)
            .default_metric(RandomTaste { seed: 1 })
            .build();
    }
}
