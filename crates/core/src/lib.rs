//! # owp-core — overlays with preferences
//!
//! The headline deliverable of the reproduction of Georgiadis &
//! Papatriantafilou, *Overlays with preferences: Approximation algorithms
//! for matching with preference lists* (IPDPS 2010): a library with which
//! peers holding **private preference lists** build an overlay by running
//! the fully distributed **LID** protocol, with the collective guarantee of
//! Theorem 3 — total satisfaction at least `¼(1 + 1/b_max)` of optimal.
//!
//! * [`lid`] — Algorithm 1 as a message-passing state machine over
//!   `owp-simnet`, with asynchronous and synchronous runners;
//! * [`metric`] — the suitability metrics of the paper's introduction
//!   (distance, interests, transaction history, resources, composites),
//!   each peer free to use its own;
//! * [`overlay`] — the fluent [`overlay::OverlayBuilder`] →
//!   [`overlay::Overlay`] construction pipeline;
//! * [`churn`] — the paper's future-work extension: joins/leaves with
//!   greedy local repair;
//! * [`privacy`] — accounting of exactly what crosses the wire (one `ΔS̄`
//!   scalar per edge direction, never the metric or the list).
//!
//! ## Quickstart
//!
//! ```
//! use owp_core::metric::RandomTaste;
//! use owp_core::overlay::OverlayBuilder;
//! use owp_graph::generators::erdos_renyi;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let g = erdos_renyi(100, 0.1, &mut StdRng::seed_from_u64(42));
//! let overlay = OverlayBuilder::new(g)
//!     .default_metric(RandomTaste { seed: 7 })
//!     .uniform_quota(4)
//!     .build()
//!     .run(Default::default());
//!
//! assert!(overlay.lid.terminated);                 // Lemma 5
//! println!("mean satisfaction: {:.3}", overlay.report.satisfaction_mean);
//! println!("guaranteed ≥ {:.3} of OPT", overlay.guaranteed_fraction); // Thm 3
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod lid;
pub mod lid_reliable;
pub mod metric;
pub mod overlay;
pub mod privacy;

pub use churn::ChurnSim;
pub use lid::{
    replay_lid_trace, run_lid, run_lid_causal, run_lid_sync, run_lid_sync_series, run_lid_traced,
    LidMessage, LidNode, LidResult,
};
pub use lid_reliable::{run_lid_reliable, ReliableLidNode, DEFAULT_RETRY_INTERVAL};
pub use metric::SuitabilityMetric;
pub use overlay::{Overlay, OverlayBuilder, OverlayNetwork};
pub use privacy::DisclosureReport;
