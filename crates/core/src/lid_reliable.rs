//! Reliable LID — retransmission on top of Algorithm 1.
//!
//! Experiment E11 shows the paper's reliable-channel assumption is
//! load-bearing: with message loss, plain LID deadlocks (nodes wait forever
//! for lost replies) and locks can go asymmetric. This module is the
//! engineering answer the paper's conclusion gestures at: a thin
//! retransmission layer that restores both termination and the exact
//! LIC-equivalent result under any loss rate `< 1`.
//!
//! Mechanism — no sequence numbers are needed because LID's messages are
//! *idempotent* (`A`-inserts and `U`-removals are set operations):
//!
//! 1. **Retransmit outstanding proposals.** While `P \ K ≠ ∅`, resend every
//!    unanswered `PROP` each `interval` ticks. This defeats loss of our
//!    `PROP`, of the peer's answering `PROP`, and of answering `REJ`s (a
//!    terminated peer re-answers duplicates — Algorithm 1's post-termination
//!    reply already handles that).
//! 2. **Confirm on duplicate.** A `PROP` arriving from a partner we already
//!    *locked* means the peer never saw the `PROP` of ours that completed
//!    the handshake — answer with an `ACK` (a `Prop` for the receiver's
//!    state machine that is itself never answered). This repairs
//!    half-locked pairs without creating confirmation echo loops between
//!    two locked nodes.
//! 3. Timers stop re-arming once the node terminates, so the network still
//!    quiesces.

use crate::lid::{extract_matching_from, LidMessage, LidNode, LidResult};
use owp_graph::NodeId;
use owp_matching::Problem;
use owp_simnet::{Context, NodeEvent, Protocol, SimConfig, SimTime, Simulator};

/// Default retransmission interval in ticks.
pub const DEFAULT_RETRY_INTERVAL: SimTime = 50;

/// Algorithm 1 wrapped in the retransmission layer.
pub struct ReliableLidNode {
    inner: LidNode,
    interval: SimTime,
    /// Retransmissions performed (for reporting).
    retransmissions: u64,
}

impl ReliableLidNode {
    /// Wraps a node with the given retransmission interval.
    pub fn new(problem: &Problem, id: NodeId, interval: SimTime) -> Self {
        ReliableLidNode {
            inner: LidNode::new_for(problem, id),
            interval,
            retransmissions: 0,
        }
    }

    /// The wrapped Algorithm 1 state machine.
    pub fn inner(&self) -> &LidNode {
        &self.inner
    }

    /// Retransmissions this node performed.
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }

    fn arm(&self, ctx: &mut Context<LidMessage>) {
        if !self.inner.is_terminated() {
            ctx.set_timer(self.interval, 0);
        }
    }
}

impl Protocol for ReliableLidNode {
    type Message = LidMessage;

    fn on_start(&mut self, ctx: &mut Context<LidMessage>) {
        self.inner.on_start(ctx);
        self.arm(ctx);
    }

    fn on_message(&mut self, from: NodeId, msg: LidMessage, ctx: &mut Context<LidMessage>) {
        match msg {
            LidMessage::Prop if self.inner.is_locked(from) => {
                // The peer is still proposing although we consider the pair
                // locked: our handshake-completing PROP was lost. Confirm
                // with an ACK — never with a PROP, and the ACK itself is
                // never answered, so two mutually-locked nodes cannot echo
                // confirmations at each other forever.
                self.retransmissions += 1;
                ctx.send(from, LidMessage::Ack);
                ctx.emit(NodeEvent::Retransmit { to: from });
            }
            LidMessage::Ack if self.inner.is_locked(from) => {
                // Stale confirmation for an already-completed handshake.
            }
            LidMessage::Rej if self.inner.is_locked(from) => {
                // Only reachable under crash-restart faults: the peer lost
                // its side of the lock to amnesia and settled elsewhere.
                // Keep our side — the post-run asymmetric-lock audit reports
                // the half-locked pair instead of the state machine
                // asserting on an "impossible" message.
            }
            _ => self.inner.on_message(from, msg, ctx),
        }
    }

    fn on_restart(&mut self, ctx: &mut Context<LidMessage>) {
        // Crash-restart recovery: the node reboots with amnesia. Reset the
        // wrapped state machine, re-enter Algorithm 1 from the top, and
        // re-arm retransmission. Locked ex-partners answer the re-proposals
        // with ACK (the duplicate-PROP branch above), peers that rejected us
        // before the crash re-reject (the post-termination reply), so the
        // node converges back to the LIC-equivalent outcome.
        self.inner.reset();
        self.inner.on_start(ctx);
        self.arm(ctx);
    }

    fn on_timer(&mut self, _tag: u64, ctx: &mut Context<LidMessage>) {
        for v in self.inner.outstanding_proposals() {
            self.retransmissions += 1;
            ctx.send(v, LidMessage::Prop);
            ctx.emit(NodeEvent::Retransmit { to: v });
        }
        self.arm(ctx);
    }

    fn is_terminated(&self) -> bool {
        self.inner.is_terminated()
    }
}

/// Runs reliable LID on the asynchronous simulator. With any loss rate
/// below 1 the run terminates with the exact LIC-equivalent matching.
pub fn run_lid_reliable(problem: &Problem, config: SimConfig, interval: SimTime) -> LidResult {
    let nodes: Vec<ReliableLidNode> = problem
        .graph
        .nodes()
        .map(|i| ReliableLidNode::new(problem, i, interval))
        .collect();
    let mut sim = Simulator::with_topology(nodes, config, &problem.graph);
    let out = sim.run();
    let terminated = out.quiescent && sim.nodes().all(|n| n.is_terminated());
    let (matching, asymmetric_locks) =
        extract_matching_from(problem, sim.nodes().map(|n| n.inner()));
    LidResult {
        matching,
        stats: sim.stats().clone(),
        end_time: out.end_time,
        rounds: 0,
        terminated,
        init_messages: 2 * problem.edge_count() as u64,
        asymmetric_locks,
    }
}

/// Runs reliable LID with telemetry recording forced on, returning the
/// result together with the structured event log (the chaos campaign feeds
/// the log to the Lemma 5 causal-acyclicity certificate).
pub fn run_lid_reliable_traced(
    problem: &Problem,
    config: SimConfig,
    interval: SimTime,
) -> (LidResult, owp_simnet::EventLog) {
    let config = config.telemetry();
    let nodes: Vec<ReliableLidNode> = problem
        .graph
        .nodes()
        .map(|i| ReliableLidNode::new(problem, i, interval))
        .collect();
    let mut sim = Simulator::with_topology(nodes, config, &problem.graph);
    let out = sim.run();
    let terminated = out.quiescent && sim.nodes().all(|n| n.is_terminated());
    let (matching, asymmetric_locks) =
        extract_matching_from(problem, sim.nodes().map(|n| n.inner()));
    let result = LidResult {
        matching,
        stats: sim.stats().clone(),
        end_time: out.end_time,
        rounds: 0,
        terminated,
        init_messages: 2 * problem.edge_count() as u64,
        asymmetric_locks,
    };
    (result, sim.take_telemetry())
}

#[cfg(test)]
mod tests {
    use super::*;
    use owp_matching::lic::{lic, SelectionPolicy};
    use owp_matching::verify;
    use owp_simnet::{FaultPlan, LatencyModel};

    #[test]
    fn without_loss_behaves_like_plain_lid() {
        for seed in 0..8 {
            let p = Problem::random_gnp(25, 0.3, 3, seed);
            let r = run_lid_reliable(&p, SimConfig::with_seed(seed), 50);
            assert!(r.terminated);
            assert_eq!(r.asymmetric_locks, 0);
            let c = lic(&p, SelectionPolicy::InOrder);
            assert!(r.matching.same_edges(&c));
        }
    }

    #[test]
    fn survives_heavy_message_loss() {
        // 30% of ALL messages (including retransmissions) dropped: plain LID
        // deadlocks; reliable LID must terminate with the exact LIC result.
        for seed in 0..6 {
            let p = Problem::random_gnp(20, 0.3, 2, 40 + seed);
            let cfg = SimConfig::with_seed(seed)
                .latency(LatencyModel::Uniform { lo: 1, hi: 20 })
                .faults(FaultPlan::with_drop_probability(0.3));
            let r = run_lid_reliable(&p, cfg, 30);
            assert!(r.terminated, "seed {seed}: must terminate despite loss");
            assert_eq!(r.asymmetric_locks, 0, "seed {seed}: handshakes repaired");
            let c = lic(&p, SelectionPolicy::InOrder);
            assert!(
                r.matching.same_edges(&c),
                "seed {seed}: loss must not change the outcome"
            );
            verify::check_valid(&p, &r.matching).expect("valid");
        }
    }

    #[test]
    fn plain_lid_fails_where_reliable_succeeds() {
        // Demonstrate the contrast on one instance/seed where plain LID
        // provably hangs (non-terminated) under the same fault plan.
        let p = Problem::random_gnp(20, 0.3, 2, 9);
        let cfg = || {
            SimConfig::with_seed(9)
                .faults(FaultPlan::with_drop_probability(0.3))
        };
        let plain = crate::lid::run_lid(&p, cfg());
        let reliable = run_lid_reliable(&p, cfg(), 30);
        assert!(!plain.terminated, "plain LID should hang under this loss");
        assert!(reliable.terminated);
    }

    #[test]
    fn aggressive_retries_without_loss_terminate() {
        // Regression: a retry interval *shorter* than typical handshake
        // latency fires retransmissions even with zero loss; each duplicate
        // PROP earns an ACK. Before ACKs existed, two mutually-locked nodes
        // would echo confirmation PROPs at each other forever (no loss to
        // break the chain) and the network never quiesced.
        for seed in 0..6 {
            let p = Problem::random_gnp(48, 0.2, 3, 70 + seed);
            let cfg = SimConfig::with_seed(seed)
                .latency(LatencyModel::Uniform { lo: 1, hi: 20 });
            let r = run_lid_reliable(&p, cfg, 5); // retries long before replies
            assert!(r.terminated, "seed {seed}: echo chains must die out");
            assert_eq!(r.asymmetric_locks, 0);
            let c = lic(&p, SelectionPolicy::InOrder);
            assert!(r.matching.same_edges(&c), "seed {seed}");
        }
    }

    #[test]
    fn crash_restart_recovers_the_lic_matching() {
        // A node crashes mid-run and restarts with amnesia. The recovery
        // hook re-enters Algorithm 1: locked ex-partners re-confirm with
        // ACK, terminated peers re-reject, and the run converges back to
        // the exact LIC-equivalent matching with no asymmetric locks.
        for seed in 0..6 {
            let p = Problem::random_gnp(20, 0.3, 2, 100 + seed);
            let victim = NodeId((seed % 20) as u32);
            let cfg = SimConfig::with_seed(seed)
                .latency(LatencyModel::Uniform { lo: 1, hi: 10 })
                .faults(FaultPlan::none().crash(victim, 15).restart(victim, 120));
            let r = run_lid_reliable(&p, cfg, 30);
            assert!(r.terminated, "seed {seed}: must terminate despite restart");
            assert_eq!(r.asymmetric_locks, 0, "seed {seed}: locks re-confirmed");
            let c = lic(&p, SelectionPolicy::InOrder);
            assert!(
                r.matching.same_edges(&c),
                "seed {seed}: restart must not change the outcome"
            );
            verify::check_valid(&p, &r.matching).expect("valid");
        }
    }

    #[test]
    fn crash_restart_composed_with_loss_and_fifo_violation() {
        // The full chaos cocktail on one instance: loss, duplication,
        // reordering and a crash-restart together. Reliable LID still
        // terminates with the exact LIC matching (idempotent messages make
        // duplicates harmless; REJ permanence makes reordering harmless).
        for seed in 0..4 {
            let p = Problem::random_gnp(16, 0.35, 2, 130 + seed);
            let victim = NodeId((seed % 16) as u32);
            let plan = FaultPlan::with_drop_probability(0.15)
                .duplicate(0.2)
                .reorder(0.3)
                .crash(victim, 20)
                .restart(victim, 150);
            let cfg = SimConfig::with_seed(seed)
                .latency(LatencyModel::Uniform { lo: 1, hi: 10 })
                .faults(plan);
            let r = run_lid_reliable(&p, cfg, 25);
            assert!(r.terminated, "seed {seed}");
            assert_eq!(r.asymmetric_locks, 0, "seed {seed}");
            let c = lic(&p, SelectionPolicy::InOrder);
            assert!(r.matching.same_edges(&c), "seed {seed}");
        }
    }

    #[test]
    fn traced_run_certifies_causal_acyclicity_under_chaos() {
        use owp_telemetry::CausalDag;
        let p = Problem::random_gnp(14, 0.3, 2, 140);
        let plan = FaultPlan::with_drop_probability(0.2)
            .reorder(0.3)
            .crash(NodeId(3), 10)
            .restart(NodeId(3), 80);
        let cfg = SimConfig::with_seed(7)
            .latency(LatencyModel::Uniform { lo: 1, hi: 8 })
            .faults(plan);
        let (r, log) = run_lid_reliable_traced(&p, cfg, 20);
        assert!(r.terminated);
        let dag = CausalDag::from_log(&log);
        assert!(dag.is_certified(), "Lemma 5 certificate survives chaos");
        assert_eq!(log.with_tag("restarted").count(), 1);
    }

    #[test]
    fn retransmissions_are_counted_and_bounded_without_loss() {
        // Without loss and unit latency, everything resolves before the
        // first retry fires when the interval is generous.
        let p = Problem::random_gnp(20, 0.3, 2, 3);
        let r = run_lid_reliable(&p, SimConfig::with_seed(3), 10_000);
        assert!(r.terminated);
        // No retransmission message kinds beyond plain LID's counts: equal
        // PROP counts to a plain run.
        let plain = crate::lid::run_lid(&p, SimConfig::with_seed(3));
        use owp_simnet::MessageKind;
        assert_eq!(
            r.stats.sent_of(MessageKind::Prop),
            plain.stats.sent_of(MessageKind::Prop)
        );
    }
}
