//! Offline vendored subset of the `rayon` API.
//!
//! Real rayon is unreachable in this build environment, so the slice of its
//! API the workspace consumes is re-implemented on `std::thread::scope`:
//!
//! * `(range | vec).into_par_iter().map(f).collect()` (also `filter_map`,
//!   `for_each`, `sum`) — order-preserving, eager;
//! * [`slice::ParallelSliceMut::par_sort_unstable_by_key`] and friends —
//!   parallel chunk sort + bottom-up merge;
//! * [`join`] — two-way fork-join.
//!
//! Unlike real rayon there is no global work-stealing pool: each adaptor
//! spawns scoped threads (bounded by `available_parallelism`) per call. For
//! the coarse-grained loops this workspace runs (one protocol simulation or
//! one weight table per item), that overhead is noise.

#![warn(missing_docs)]

use std::num::NonZeroUsize;

/// Everything a `use rayon::prelude::*` consumer expects.
pub mod prelude {
    pub use crate::slice::{ParallelSlice, ParallelSliceMut};
    pub use crate::{IntoParallelIterator, ParIter};
}

pub mod slice;

/// Number of worker threads used by the adaptors.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs both closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("join closure panicked"))
    })
}

/// Order-preserving parallel map: applies `f` to every item, fanning chunks
/// out over scoped threads.
fn par_map_vec<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = current_num_threads().min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::new();
    let mut items = items;
    while !items.is_empty() {
        let rest = items.split_off(items.len().min(chunk));
        chunks.push(std::mem::replace(&mut items, rest));
    }
    let f = &f;
    let results: Vec<Vec<R>> = std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| s.spawn(move || c.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel map worker panicked"))
            .collect()
    });
    results.into_iter().flatten().collect()
}

/// An eager, order-preserving parallel iterator over an owned buffer.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Parallel map. Output order matches input order.
    pub fn map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(T) -> R + Sync + Send,
    {
        ParIter {
            items: par_map_vec(self.items, f),
        }
    }

    /// Parallel filter-map. Surviving items keep their relative order.
    pub fn filter_map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(T) -> Option<R> + Sync + Send,
    {
        ParIter {
            items: par_map_vec(self.items, f).into_iter().flatten().collect(),
        }
    }

    /// Parallel for-each (effects only).
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync + Send,
    {
        let _ = par_map_vec(self.items, f);
    }

    /// Collects into any `FromIterator` container, preserving order.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Sums the items.
    pub fn sum<S: std::iter::Sum<T>>(self) -> S {
        self.items.into_iter().sum()
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` iff there are no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// Conversion into a [`ParIter`].
pub trait IntoParallelIterator {
    /// Item type of the resulting iterator.
    type Item: Send;
    /// Converts `self`, realizing the items eagerly.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

macro_rules! impl_range_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}

impl_range_par_iter!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_preserves_order() {
        let out: Vec<u64> = (0u64..1000).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0u64..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn filter_map_preserves_order() {
        let out: Vec<u64> = (0u64..100)
            .into_par_iter()
            .filter_map(|x| (x % 3 == 0).then_some(x))
            .collect();
        assert_eq!(out, (0u64..100).filter(|x| x % 3 == 0).collect::<Vec<_>>());
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn sum_and_vec_sources() {
        let s: u64 = vec![1u64, 2, 3, 4].into_par_iter().map(|x| x).sum();
        assert_eq!(s, 10);
    }
}
