//! Parallel slice extensions: `par_sort_*` (chunk sort on scoped threads +
//! buffered merges) and a read-only `par_iter` that clones into a
//! [`crate::ParIter`].

use crate::{current_num_threads, IntoParallelIterator, ParIter};

/// Read-only parallel access to slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over cloned items (this offline stand-in realizes
    /// the buffer eagerly; real rayon borrows).
    fn par_iter(&self) -> ParIter<T>
    where
        T: Clone + Send;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<T>
    where
        T: Clone + Send,
    {
        self.to_vec().into_par_iter()
    }
}

/// Mutable parallel slice operations: parallel sorts.
///
/// Unlike real rayon these require `T: Clone` (the merge step uses a scratch
/// buffer instead of unsafe moves); every payload sorted in this workspace
/// is `Copy`.
pub trait ParallelSliceMut<T: Send + Clone> {
    /// Parallel unstable sort by key: chunk-sort on scoped threads, then
    /// buffered pairwise merges. Same final order as `sort_unstable_by_key`
    /// for total orders.
    fn par_sort_unstable_by_key<K: Ord, F: Fn(&T) -> K + Sync>(&mut self, key: F);

    /// Parallel stable sort by key (merges favour the left run on ties).
    fn par_sort_by_key<K: Ord, F: Fn(&T) -> K + Sync>(&mut self, key: F);

    /// Parallel unstable sort with the natural order.
    fn par_sort_unstable(&mut self)
    where
        T: Ord;
}

impl<T: Send + Clone> ParallelSliceMut<T> for [T] {
    fn par_sort_unstable_by_key<K: Ord, F: Fn(&T) -> K + Sync>(&mut self, key: F) {
        par_merge_sort(
            self,
            &|chunk: &mut [T]| chunk.sort_unstable_by_key(&key),
            &|a: &T, b: &T| key(a) <= key(b),
        );
    }

    fn par_sort_by_key<K: Ord, F: Fn(&T) -> K + Sync>(&mut self, key: F) {
        par_merge_sort(
            self,
            &|chunk: &mut [T]| chunk.sort_by_key(&key),
            &|a: &T, b: &T| key(a) <= key(b),
        );
    }

    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        par_merge_sort(
            self,
            &|chunk: &mut [T]| chunk.sort_unstable(),
            &|a: &T, b: &T| a <= b,
        );
    }
}

const SEQUENTIAL_CUTOFF: usize = 4096;

fn par_merge_sort<T: Send + Clone>(
    data: &mut [T],
    sort_chunk: &(dyn Fn(&mut [T]) + Sync),
    le: &(dyn Fn(&T, &T) -> bool + Sync),
) {
    let n = data.len();
    let threads = current_num_threads();
    if n < SEQUENTIAL_CUTOFF || threads <= 1 {
        sort_chunk(data);
        return;
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|s| {
        let mut rest = &mut *data;
        let mut handles = Vec::new();
        while !rest.is_empty() {
            let take = rest.len().min(chunk);
            let (head, tail) = rest.split_at_mut(take);
            rest = tail;
            handles.push(s.spawn(move || sort_chunk(head)));
        }
        for h in handles {
            h.join().expect("sort worker panicked");
        }
    });
    // Bottom-up pairwise merges of the sorted chunks. Sequential: the chunk
    // sorts are O((n/t) log n) each and dominate; merging is one O(n) pass
    // per level over ~log(t) levels.
    let mut width = chunk;
    let mut scratch: Vec<T> = Vec::with_capacity(n.div_ceil(2));
    while width < n {
        let mut lo = 0;
        while lo + width < n {
            let hi = (lo + 2 * width).min(n);
            merge(&mut data[lo..hi], width, le, &mut scratch);
            lo = hi;
        }
        width *= 2;
    }
}

/// Merges the sorted runs `data[..mid]` and `data[mid..]`. Stable (left run
/// wins ties). `scratch` is cleared before use.
fn merge<T: Clone>(
    data: &mut [T],
    mid: usize,
    le: &(dyn Fn(&T, &T) -> bool + Sync),
    scratch: &mut Vec<T>,
) {
    if mid == 0 || mid >= data.len() || le(&data[mid - 1], &data[mid]) {
        return;
    }
    scratch.clear();
    scratch.extend_from_slice(&data[..mid]);
    let (mut i, mut j, mut out) = (0usize, mid, 0usize);
    while i < scratch.len() && j < data.len() {
        if le(&scratch[i], &data[j]) {
            data[out] = scratch[i].clone();
            i += 1;
        } else {
            data[out] = data[j].clone();
            j += 1;
        }
        out += 1;
    }
    while i < scratch.len() {
        data[out] = scratch[i].clone();
        i += 1;
        out += 1;
    }
    // Remaining right-run items are already in place.
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_sort_matches_std_sort() {
        let mut a: Vec<u64> = (0..50_000u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        let mut b = a.clone();
        a.par_sort_unstable_by_key(|&x| x);
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn par_sort_by_key_matches_on_total_orders() {
        let mut a: Vec<(u32, u32)> = (0..20_000u32).map(|i| (i % 97, i)).collect();
        let mut b = a.clone();
        a.par_sort_by_key(|&(k, t)| (k, t));
        b.sort_by_key(|&(k, t)| (k, t));
        assert_eq!(a, b);
    }

    #[test]
    fn par_sort_unstable_natural_order() {
        let mut a: Vec<i64> = (0..10_000i64).map(|i| 5_000 - i).collect();
        a.par_sort_unstable();
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn small_slices_take_sequential_path() {
        let mut v = vec![3u8, 1, 2];
        v.par_sort_unstable_by_key(|&x| x);
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn par_iter_clones() {
        use crate::prelude::*;
        let v = vec![1u32, 2, 3];
        let doubled: Vec<u32> = v.as_slice().par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
        assert_eq!(v.len(), 3);
    }
}
