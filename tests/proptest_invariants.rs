//! Property-based tests (proptest) over randomly generated instances:
//! the core invariants must hold for *arbitrary* graphs, preference
//! permutations and quota vectors, not just the seeds the unit tests picked.

use owp_core::run_lid;
use owp_graph::{GraphBuilder, NodeId, PreferenceTable, Quotas};
use owp_matching::lic::{lic, SelectionPolicy};
use owp_matching::numeric::Rational;
use owp_matching::satisfaction::{node_satisfaction, node_satisfaction_modified};
use owp_matching::{verify, Problem};
use owp_simnet::{LatencyModel, SimConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a random simple graph with n ∈ [2, 24] nodes and a random
/// subset of possible edges, plus a quota seed and preference seed.
fn instance_strategy() -> impl Strategy<Value = Problem> {
    (2usize..24, any::<u64>(), 0u32..5, any::<u64>()).prop_map(|(n, edge_seed, b, pref_seed)| {
        let mut rng = StdRng::seed_from_u64(edge_seed);
        let g = owp_graph::generators::erdos_renyi(n, 0.4, &mut rng);
        let mut prng = StdRng::seed_from_u64(pref_seed);
        let prefs = PreferenceTable::random(&g, &mut prng);
        let quotas = Quotas::random_range(&g, 0, b.max(1), &mut prng);
        Problem::new(g, prefs, quotas)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lic_output_is_valid_maximal_and_certified(p in instance_strategy()) {
        let m = lic(&p, SelectionPolicy::InOrder);
        prop_assert!(verify::check_valid(&p, &m).is_ok());
        prop_assert!(verify::check_maximal(&p, &m).is_ok());
        prop_assert!(verify::check_greedy_certificate(&p, &m).is_ok());
    }

    #[test]
    fn lic_is_confluent(p in instance_strategy(), s1 in any::<u64>(), s2 in any::<u64>()) {
        let a = lic(&p, SelectionPolicy::Random(s1));
        let b = lic(&p, SelectionPolicy::Random(s2));
        prop_assert!(a.same_edges(&b), "selection order changed the matching");
    }

    #[test]
    fn lid_equals_lic_under_random_latency(p in instance_strategy(), seed in any::<u64>()) {
        let c = lic(&p, SelectionPolicy::InOrder);
        let cfg = SimConfig::with_seed(seed).latency(LatencyModel::Uniform { lo: 1, hi: 64 });
        let d = run_lid(&p, cfg);
        prop_assert!(d.terminated, "Lemma 5 violated");
        prop_assert_eq!(d.asymmetric_locks, 0);
        prop_assert!(d.matching.same_edges(&c), "Theorem 3 premise violated");
    }

    #[test]
    fn satisfaction_stays_in_unit_interval(p in instance_strategy()) {
        let m = lic(&p, SelectionPolicy::InOrder);
        for i in p.nodes() {
            let s = node_satisfaction(&p.prefs, &p.quotas, i, m.connections(i));
            prop_assert!((0.0..=1.0 + 1e-12).contains(&s), "S_{i:?} = {s}");
            let sm = node_satisfaction_modified(&p.prefs, &p.quotas, i, m.connections(i));
            prop_assert!(sm <= s + 1e-12, "modified ≤ true satisfaction");
        }
    }

    #[test]
    fn weights_are_positive_and_keys_strictly_ordered(p in instance_strategy()) {
        let g = &p.graph;
        let mut keys: Vec<_> = g.edges().map(|e| p.weights.key(g, e)).collect();
        for e in g.edges() {
            let (u, v) = g.endpoints(e);
            if p.quotas.get(u) > 0 && p.quotas.get(v) > 0 {
                prop_assert!(p.weights.get(e).is_positive());
            }
        }
        keys.sort();
        prop_assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn rational_arithmetic_laws(
        a in -1000i128..1000, b in 1i128..1000,
        c in -1000i128..1000, d in 1i128..1000,
    ) {
        let x = Rational::new(a, b);
        let y = Rational::new(c, d);
        // Commutativity and exact f64 agreement on ordering (values are
        // small enough for f64 to be exact up to rounding ties).
        prop_assert_eq!(x + y, y + x);
        prop_assert_eq!((x + y) - y, x);
        let cmp_exact = x.cmp(&y);
        let diff = x.to_f64() - y.to_f64();
        if diff.abs() > 1e-9 {
            prop_assert_eq!(cmp_exact == std::cmp::Ordering::Greater, diff > 0.0);
        }
    }

    #[test]
    fn graph_builder_handles_arbitrary_edge_lists(
        n in 1usize..30,
        edges in proptest::collection::vec((0u32..30, 0u32..30), 0..80),
    ) {
        let mut b = GraphBuilder::new(n);
        let mut expected = std::collections::BTreeSet::new();
        for (u, v) in edges {
            let (u, v) = (u % n as u32, v % n as u32);
            if u != v {
                b.add_edge(NodeId(u), NodeId(v));
                expected.insert((u.min(v), u.max(v)));
            }
        }
        let g = b.build();
        prop_assert_eq!(g.edge_count(), expected.len());
        for e in g.edges() {
            let (u, v) = g.endpoints(e);
            prop_assert!(expected.contains(&(u.0, v.0)));
            prop_assert_eq!(g.edge_between(u, v), Some(e));
        }
        let handshake: usize = g.nodes().map(|i| g.degree(i)).sum();
        prop_assert_eq!(handshake, 2 * g.edge_count());
    }

    #[test]
    fn churn_repair_never_reduces_active_satisfaction(
        p in instance_strategy(),
        leavers in proptest::collection::vec(0usize..24, 1..5),
    ) {
        use owp_core::ChurnSim;
        let m = lic(&p, SelectionPolicy::InOrder);
        let mut sim = ChurnSim::new(&p, m);
        for &l in &leavers {
            let i = NodeId((l % p.node_count()) as u32);
            if sim.is_active(i) {
                sim.leave(i);
            }
        }
        let before = sim.active_satisfaction();
        sim.repair();
        let after = sim.active_satisfaction();
        prop_assert!(after >= before - 1e-9, "repair reduced satisfaction");
        prop_assert!(verify::check_valid(&p, sim.matching()).is_ok());
    }
}
