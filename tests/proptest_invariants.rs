//! Property-based tests over randomly generated instances: the core
//! invariants must hold for *arbitrary* graphs, preference permutations and
//! quota vectors, not just the seeds the unit tests picked.
//!
//! Implemented as plain seeded-RNG loops (the build environment has no
//! registry route, so proptest is unavailable): each property draws `CASES`
//! independent random instances from a deterministic stream and asserts the
//! invariant on every one. Failures print the derived instance seeds so a
//! shrunk repro can be pasted into a unit test.

use owp_core::run_lid;
use owp_graph::{GraphBuilder, NodeId, PreferenceTable, Quotas};
use owp_matching::lic::{lic, SelectionPolicy};
use owp_matching::numeric::Rational;
use owp_matching::satisfaction::{node_satisfaction, node_satisfaction_modified};
use owp_matching::{verify, Problem};
use owp_simnet::{LatencyModel, SimConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 64;

/// One random instance: a G(n, 0.4) graph with n ∈ [2, 24] nodes, uniform
/// random preference permutations and quotas drawn from `0..=b`, b ∈ [1, 4].
/// Returns the instance plus the seeds that reproduce it.
fn random_instance(meta: &mut StdRng) -> (Problem, u64, u64) {
    let n = meta.gen_range(2usize..24);
    let edge_seed: u64 = meta.gen_range(0..=u64::MAX);
    let b = meta.gen_range(0u32..5).max(1);
    let pref_seed: u64 = meta.gen_range(0..=u64::MAX);
    let mut rng = StdRng::seed_from_u64(edge_seed);
    let g = owp_graph::generators::erdos_renyi(n, 0.4, &mut rng);
    let mut prng = StdRng::seed_from_u64(pref_seed);
    let prefs = PreferenceTable::random(&g, &mut prng);
    let quotas = Quotas::random_range(&g, 0, b, &mut prng);
    (Problem::new(g, prefs, quotas), edge_seed, pref_seed)
}

#[test]
fn lic_output_is_valid_maximal_and_certified() {
    let mut meta = StdRng::seed_from_u64(0x11CA5E5);
    for case in 0..CASES {
        let (p, es, ps) = random_instance(&mut meta);
        let m = lic(&p, SelectionPolicy::InOrder);
        let ctx = format!("case {case} (edge_seed {es}, pref_seed {ps})");
        assert!(verify::check_valid(&p, &m).is_ok(), "{ctx}: invalid");
        assert!(verify::check_maximal(&p, &m).is_ok(), "{ctx}: not maximal");
        assert!(
            verify::check_greedy_certificate(&p, &m).is_ok(),
            "{ctx}: certificate failed"
        );
    }
}

#[test]
fn lic_is_confluent() {
    let mut meta = StdRng::seed_from_u64(0xC0FF1E);
    for case in 0..CASES {
        let (p, es, ps) = random_instance(&mut meta);
        let s1: u64 = meta.gen_range(0..=u64::MAX);
        let s2: u64 = meta.gen_range(0..=u64::MAX);
        let a = lic(&p, SelectionPolicy::Random(s1));
        let b = lic(&p, SelectionPolicy::Random(s2));
        assert!(
            a.same_edges(&b),
            "case {case} (edge_seed {es}, pref_seed {ps}): \
             selection order changed the matching"
        );
    }
}

#[test]
fn lid_equals_lic_under_random_latency() {
    let mut meta = StdRng::seed_from_u64(0x11D11D);
    for case in 0..CASES {
        let (p, es, ps) = random_instance(&mut meta);
        let seed: u64 = meta.gen_range(0..=u64::MAX);
        let c = lic(&p, SelectionPolicy::InOrder);
        let cfg = SimConfig::with_seed(seed).latency(LatencyModel::Uniform { lo: 1, hi: 64 });
        let d = run_lid(&p, cfg);
        let ctx = format!("case {case} (edge_seed {es}, pref_seed {ps}, sim_seed {seed})");
        assert!(d.terminated, "{ctx}: Lemma 5 violated");
        assert_eq!(d.asymmetric_locks, 0, "{ctx}: asymmetric lock");
        assert!(
            d.matching.same_edges(&c),
            "{ctx}: Theorem 3 premise violated"
        );
    }
}

#[test]
fn satisfaction_stays_in_unit_interval() {
    let mut meta = StdRng::seed_from_u64(0x5A715F);
    for case in 0..CASES {
        let (p, es, ps) = random_instance(&mut meta);
        let m = lic(&p, SelectionPolicy::InOrder);
        for i in p.nodes() {
            let s = node_satisfaction(&p.prefs, &p.quotas, i, m.connections(i));
            assert!(
                (0.0..=1.0 + 1e-12).contains(&s),
                "case {case} (edge_seed {es}, pref_seed {ps}): S_{i:?} = {s}"
            );
            let sm = node_satisfaction_modified(&p.prefs, &p.quotas, i, m.connections(i));
            assert!(
                sm <= s + 1e-12,
                "case {case} (edge_seed {es}, pref_seed {ps}): modified ≤ true satisfaction"
            );
        }
    }
}

#[test]
fn weights_are_positive_and_keys_strictly_ordered() {
    let mut meta = StdRng::seed_from_u64(0x3E16B7);
    for case in 0..CASES {
        let (p, es, ps) = random_instance(&mut meta);
        let g = &p.graph;
        let mut keys: Vec<_> = g.edges().map(|e| p.weights.key(g, e)).collect();
        for e in g.edges() {
            let (u, v) = g.endpoints(e);
            if p.quotas.get(u) > 0 && p.quotas.get(v) > 0 {
                assert!(
                    p.weights.get(e).is_positive(),
                    "case {case} (edge_seed {es}, pref_seed {ps}): w({e:?}) ≤ 0"
                );
            }
        }
        keys.sort();
        assert!(
            keys.windows(2).all(|w| w[0] < w[1]),
            "case {case} (edge_seed {es}, pref_seed {ps}): keys not strictly ordered"
        );
    }
}

#[test]
fn rational_arithmetic_laws() {
    let mut meta = StdRng::seed_from_u64(0x4A710);
    for _ in 0..4 * CASES {
        let a = meta.gen_range(-1000i64..1000) as i128;
        let b = meta.gen_range(1i64..1000) as i128;
        let c = meta.gen_range(-1000i64..1000) as i128;
        let d = meta.gen_range(1i64..1000) as i128;
        let x = Rational::new(a, b);
        let y = Rational::new(c, d);
        // Commutativity and exact f64 agreement on ordering (values are
        // small enough for f64 to be exact up to rounding ties).
        assert_eq!(x + y, y + x, "{a}/{b} + {c}/{d} not commutative");
        assert_eq!((x + y) - y, x, "({a}/{b} + {c}/{d}) - {c}/{d} ≠ {a}/{b}");
        let cmp_exact = x.cmp(&y);
        let diff = x.to_f64() - y.to_f64();
        if diff.abs() > 1e-9 {
            assert_eq!(
                cmp_exact == std::cmp::Ordering::Greater,
                diff > 0.0,
                "{a}/{b} vs {c}/{d}: exact and f64 orderings disagree"
            );
        }
    }
}

#[test]
fn graph_builder_handles_arbitrary_edge_lists() {
    let mut meta = StdRng::seed_from_u64(0x6B1DE5);
    for case in 0..CASES {
        let n = meta.gen_range(1usize..30);
        let edge_count = meta.gen_range(0usize..80);
        let edges: Vec<(u32, u32)> = (0..edge_count)
            .map(|_| (meta.gen_range(0u32..30), meta.gen_range(0u32..30)))
            .collect();
        let mut b = GraphBuilder::new(n);
        let mut expected = std::collections::BTreeSet::new();
        for &(u, v) in &edges {
            let (u, v) = (u % n as u32, v % n as u32);
            if u != v {
                b.add_edge(NodeId(u), NodeId(v));
                expected.insert((u.min(v), u.max(v)));
            }
        }
        let g = b.build();
        assert_eq!(g.edge_count(), expected.len(), "case {case}: {edges:?}");
        for e in g.edges() {
            let (u, v) = g.endpoints(e);
            assert!(expected.contains(&(u.0, v.0)), "case {case}: {edges:?}");
            assert_eq!(g.edge_between(u, v), Some(e), "case {case}: {edges:?}");
        }
        let handshake: usize = g.nodes().map(|i| g.degree(i)).sum();
        assert_eq!(handshake, 2 * g.edge_count(), "case {case}: {edges:?}");
    }
}

#[test]
fn churn_stays_certified_and_valid() {
    use owp_core::ChurnSim;
    let mut meta = StdRng::seed_from_u64(0xC4A92);
    for case in 0..CASES {
        let (p, es, ps) = random_instance(&mut meta);
        let leaver_count = meta.gen_range(1usize..5);
        let leavers: Vec<usize> = (0..leaver_count)
            .map(|_| meta.gen_range(0usize..24))
            .collect();
        let mut sim = ChurnSim::new(&p);
        let ctx = format!("case {case} (edge_seed {es}, pref_seed {ps}, leavers {leavers:?})");
        for &l in &leavers {
            let i = NodeId((l % p.node_count()) as u32);
            if sim.is_active(i) {
                sim.leave(i).unwrap_or_else(|e| panic!("{ctx}: {e}"));
            }
        }
        // Continuous certified repair: after any leave sequence the
        // matching is the exact locally-heaviest matching of the
        // survivors, and in particular valid under the original quotas.
        sim.certify().unwrap_or_else(|e| panic!("{ctx}: {e}"));
        assert!(
            verify::check_valid(&p, sim.matching()).is_ok(),
            "{ctx}: repaired matching invalid"
        );
        // Everyone returns: the full-instance canonical matching again.
        for i in p.nodes() {
            if !sim.is_active(i) {
                sim.join(i).unwrap_or_else(|e| panic!("{ctx}: {e}"));
            }
        }
        let reference = lic(&p, SelectionPolicy::InOrder);
        assert!(
            sim.matching().same_edges(&reference),
            "{ctx}: rejoin did not restore the canonical matching"
        );
    }
}
