//! Integration: the full public pipeline, end to end — metrics → preference
//! lists → weights → LID → overlay → churn — plus instance serialization.

use overlays_preferences::prelude::*;
use owp_graph::io::{read_instance, write_instance, Instance};
use owp_matching::verify;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

#[test]
fn full_pipeline_with_every_metric_kind() {
    let mut rng = StdRng::seed_from_u64(1);
    let n = 60;
    let g = owp_graph::generators::erdos_renyi(n, 0.2, &mut rng);

    let positions: Vec<(f64, f64)> = (0..n).map(|i| (i as f64 / n as f64, 0.5)).collect();
    let interests: Vec<Vec<f64>> = (0..n).map(|i| vec![(i % 5) as f64, 1.0]).collect();
    let capacity: Vec<f64> = (0..n).map(|i| (i * 7 % 13) as f64).collect();
    let mut history = TransactionHistory::new();
    history.record(NodeId(0), NodeId(1), 5.0);

    let sim = Arc::new(InterestSimilarity { interests });
    let cap = Arc::new(ResourceCapacity { capacity });

    let network = OverlayBuilder::new(g)
        .default_metric(RandomTaste { seed: 2 })
        .metric_for(NodeId(0), DistanceMetric { positions })
        .metric_for(NodeId(1), history)
        .metric_for(
            NodeId(2),
            Composite::new(vec![(0.5, sim as _), (0.5, cap as _)]),
        )
        .uniform_quota(3)
        .build();

    let overlay = network.run(SimConfig::with_seed(3).latency(LatencyModel::Uniform {
        lo: 1,
        hi: 30,
    }));
    assert!(overlay.lid.terminated);
    verify::check_valid(&network.problem, overlay.matching()).expect("valid");
    verify::check_maximal(&network.problem, overlay.matching()).expect("maximal");
    verify::check_greedy_certificate(&network.problem, overlay.matching())
        .expect("Lemma 4 certificate");

    // Per-node satisfaction is always within [0, 1].
    for s in &overlay.report.per_node {
        assert!((0.0..=1.0 + 1e-12).contains(s), "satisfaction {s} out of range");
    }

    // Churn round-trip on top of the built overlay: the engine repairs
    // within each call and stays bit-identical to a from-scratch run.
    let p = &network.problem;
    let mut churn = ChurnSim::new(p);
    churn.leave(NodeId(5)).expect("leave 5");
    churn.leave(NodeId(6)).expect("leave 6");
    churn.certify().expect("exact after leaves");
    churn.join(NodeId(5)).expect("rejoin 5");
    churn.join(NodeId(6)).expect("rejoin 6");
    churn.certify().expect("exact after rejoins");
    verify::check_valid(p, churn.matching()).expect("valid after churn");
    verify::check_maximal(p, churn.matching()).expect("maximal after churn");
}

#[test]
fn explicit_preferences_bypass_metrics() {
    let g = owp_graph::generators::complete(6);
    let prefs = PreferenceTable::by_node_id(&g);
    let network = OverlayBuilder::new(g)
        .preferences(prefs)
        .uniform_quota(2)
        .build();
    let overlay = network.run_sync();
    assert!(overlay.lid.terminated);
    assert!(overlay.lid.rounds > 0);
}

#[test]
fn instance_io_roundtrips_through_the_solver() {
    // Serialize a full instance, parse it back, and verify both copies
    // produce the same matching.
    let p1 = Problem::random_gnp(18, 0.35, 2, 9);
    let text = write_instance(&Instance {
        graph: p1.graph.clone(),
        preferences: Some(p1.prefs.clone()),
        quotas: Some(p1.quotas.clone()),
    });
    let inst = read_instance(&text).expect("parse");
    let p2 = Problem::new(
        inst.graph,
        inst.preferences.expect("prefs recorded"),
        inst.quotas.expect("quotas recorded"),
    );
    let m1 = lic(&p1, SelectionPolicy::InOrder);
    let m2 = lic(&p2, SelectionPolicy::InOrder);
    assert_eq!(m1.edge_ids(), m2.edge_ids());
}

#[test]
fn report_and_disclosure_are_printable_and_sane() {
    let g = owp_graph::generators::watts_strogatz(50, 6, 0.2, &mut StdRng::seed_from_u64(4));
    let network = OverlayBuilder::new(g)
        .default_metric(RandomTaste { seed: 6 })
        .uniform_quota(4)
        .build();
    let overlay = network.run(SimConfig::with_seed(5));
    assert!(overlay.lid.terminated);

    let d = DisclosureReport::compute(&network.problem);
    assert_eq!(d.scalars_disclosed, 2 * network.problem.edge_count() as u64);
    assert!(d.saving_factor() >= 1.0);

    // Overlay quality floor from Theorem 3 for b_max = 4.
    assert!((overlay.guaranteed_fraction - 0.25 * (1.0 + 0.25)).abs() < 1e-12);
}

#[test]
fn prelude_exposes_the_advertised_surface() {
    // Compile-time check that the prelude covers the README quickstart.
    let _p: fn(&Problem, SelectionPolicy) -> BMatching = lic;
    let _c = SimConfig::with_seed(0);
    let _f = FaultPlan::none();
    let _l = LatencyModel::unit();
}
