//! Integration: Lemma 2's load-bearing identity.
//!
//! Lemma 2 proves the modified b-matching problem and the many-to-many
//! weighted matching have the same solutions because the objectives are
//! *equal*: for any edge set `A` respecting quotas,
//! `Σ_{(i,j)∈A} w(i,j) = Σ_i S̄_i` (eq. 10 ⇔ eq. 12). We verify the identity
//! numerically for arbitrary matchings, not just optimal ones — it is a
//! property of the weight construction itself.

use owp_matching::baselines::{global_greedy, random_maximal, rank_greedy};
use owp_matching::{BMatching, Problem};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Total modified satisfaction minus the `+1` convention constant of
/// quota-0 nodes (which hold no connections and contribute no weight).
fn modified_total_adjusted(p: &Problem, m: &BMatching) -> f64 {
    let zero_quota = p.nodes().filter(|&i| p.quotas.get(i) == 0).count() as f64;
    m.total_satisfaction_modified(p) - zero_quota
}

#[test]
fn weight_equals_modified_satisfaction_for_greedy_outputs() {
    for seed in 0..20 {
        let p = Problem::random_gnp(30, 0.3, 3, seed);
        for m in [global_greedy(&p), random_maximal(&p, seed), rank_greedy(&p)] {
            let w = m.total_weight(&p);
            let s = modified_total_adjusted(&p, &m);
            assert!(
                (w - s).abs() < 1e-9,
                "seed {seed}: Σw = {w} but ΣS̄ = {s}"
            );
        }
    }
}

#[test]
fn identity_holds_for_arbitrary_partial_matchings() {
    // Not just maximal outputs: take random feasible subsets.
    for seed in 0..20 {
        let p = Problem::random_gnp(25, 0.35, 2, 100 + seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = BMatching::empty(&p.graph);
        let mut quota: Vec<u32> = p.nodes().map(|i| p.quotas.get(i)).collect();
        for e in p.graph.edges() {
            if rng.gen_range(0.0..1.0) < 0.3 {
                let (u, v) = p.graph.endpoints(e);
                if quota[u.index()] > 0 && quota[v.index()] > 0 {
                    quota[u.index()] -= 1;
                    quota[v.index()] -= 1;
                    m.insert(&p, e);
                }
            }
        }
        let w = m.total_weight(&p);
        let s = modified_total_adjusted(&p, &m);
        assert!((w - s).abs() < 1e-9, "seed {seed}: {w} vs {s}");
    }
}

#[test]
fn identity_holds_with_zero_quota_nodes() {
    use owp_graph::{PreferenceTable, Quotas};
    let g = owp_graph::generators::complete(8);
    let prefs = PreferenceTable::by_node_id(&g);
    let quotas = Quotas::from_vec(&g, vec![0, 2, 2, 0, 1, 3, 2, 1]);
    let p = Problem::new(g, prefs, quotas);
    let m = global_greedy(&p);
    let w = m.total_weight(&p);
    let s = modified_total_adjusted(&p, &m);
    assert!((w - s).abs() < 1e-9, "{w} vs {s}");
}

#[test]
fn empty_matching_identity() {
    let p = Problem::random_gnp(10, 0.4, 2, 7);
    let m = BMatching::empty(&p.graph);
    assert_eq!(m.total_weight(&p), 0.0);
    assert!((modified_total_adjusted(&p, &m)).abs() < 1e-12);
}
