//! Integration: LID (distributed, asynchronous) and LIC (centralized) select
//! identical edge sets — the premise of Theorem 3 (via Lemmas 4 and 6) —
//! across topologies, quotas, latency models and selection policies.

use owp_graph::generators::{barabasi_albert, complete, grid, ring, watts_strogatz};
use owp_graph::{PreferenceTable, Quotas};
use owp_matching::baselines::global_greedy;
use owp_matching::lic::{lic, SelectionPolicy};
use owp_matching::Problem;
use owp_core::run_lid;
use owp_simnet::{LatencyModel, SimConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn check_equivalence(p: &Problem, label: &str) {
    let reference = lic(p, SelectionPolicy::InOrder);

    // LIC confluence across policies.
    for policy in [
        SelectionPolicy::Reverse,
        SelectionPolicy::Random(1),
        SelectionPolicy::Random(99),
    ] {
        assert!(
            lic(p, policy).same_edges(&reference),
            "{label}: LIC policy {policy:?} diverged"
        );
    }

    // Global greedy is one valid locally-heaviest order.
    assert!(
        global_greedy(p).same_edges(&reference),
        "{label}: global greedy diverged"
    );

    // Distributed LID under several latency regimes.
    for (k, latency) in [
        LatencyModel::unit(),
        LatencyModel::Uniform { lo: 1, hi: 200 },
        LatencyModel::Exponential { mean: 40.0 },
    ]
    .into_iter()
    .enumerate()
    {
        let r = run_lid(p, SimConfig::with_seed(7 + k as u64).latency(latency));
        assert!(r.terminated, "{label}: LID failed to terminate");
        assert_eq!(r.asymmetric_locks, 0, "{label}: asymmetric locks");
        assert!(
            r.matching.same_edges(&reference),
            "{label}: LID diverged from LIC under latency #{k}"
        );
    }
}

#[test]
fn equivalence_on_random_gnp() {
    for seed in 0..12 {
        for b in [1, 2, 4] {
            let p = Problem::random_gnp(28, 0.25, b, seed);
            check_equivalence(&p, &format!("gnp seed={seed} b={b}"));
        }
    }
}

#[test]
fn equivalence_on_structured_topologies() {
    let mut rng = StdRng::seed_from_u64(5);
    let graphs: Vec<(&str, owp_graph::Graph)> = vec![
        ("ring", ring(24)),
        ("grid", grid(5, 6)),
        ("complete", complete(12)),
        ("ba", barabasi_albert(40, 3, &mut rng)),
        ("ws", watts_strogatz(40, 4, 0.3, &mut rng)),
    ];
    for (name, g) in graphs {
        for b in [1, 2, 3] {
            let p = Problem::random_over(g.clone(), b, 11 + b as u64);
            check_equivalence(&p, &format!("{name} b={b}"));
        }
    }
}

#[test]
fn equivalence_with_heterogeneous_quotas() {
    for seed in 0..8 {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = owp_graph::generators::erdos_renyi(30, 0.3, &mut rng);
        let prefs = PreferenceTable::random(&g, &mut rng);
        let quotas = Quotas::random_range(&g, 0, 5, &mut rng);
        let p = Problem::new(g, prefs, quotas);
        check_equivalence(&p, &format!("hetero seed={seed}"));
    }
}

#[test]
fn selection_histories_are_valid_lemma3_witnesses() {
    use owp_matching::lic::lic_with_order;
    use owp_matching::verify::check_selection_order;
    for seed in 0..10 {
        let p = Problem::random_gnp(22, 0.3, 3, 40 + seed);
        for policy in [SelectionPolicy::InOrder, SelectionPolicy::Random(seed)] {
            let (_, order) = lic_with_order(&p, policy);
            check_selection_order(&p, &order).expect("locally heaviest at each step");
        }
    }
}
