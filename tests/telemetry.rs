//! Integration tests of the telemetry layer through the umbrella crate:
//! trace → replay round-trips, the convergence series' bit-for-bit endpoint
//! guarantee, and the zero-cost-when-disabled contract.

use overlays_preferences::prelude::*;
use owp_simnet::{Recorder as _, TelemetryEvent};

/// The transport trace is a complete causal record: feeding the delivered
/// messages back through fresh protocol state machines reproduces the exact
/// final matching, across latency models and seeds.
#[test]
fn trace_replay_reproduces_the_matching() {
    for seed in 0..5u64 {
        let p = Problem::random_gnp(40, 0.18, 3, seed);
        for latency in [
            LatencyModel::Constant { ticks: 1 },
            LatencyModel::Uniform { lo: 1, hi: 12 },
            LatencyModel::Exponential { mean: 7.0 },
        ] {
            let cfg = SimConfig::with_seed(seed).latency(latency);
            let (r, log) = run_lid_traced(&p, cfg.clone());
            assert!(r.terminated);

            // The trace agrees with the counters the run reported.
            assert_eq!(log.deliveries().count() as u64, r.stats.delivered);

            let replayed = replay_lid_trace(&p, &log);
            assert!(
                replayed.same_edges(&r.matching),
                "seed {seed}: replay must reconstruct the matching exactly"
            );

            // And the traced run didn't change the outcome: a plain run on
            // the same config lands on the same matching and counters.
            let plain = run_lid(&p, cfg);
            assert!(plain.matching.same_edges(&r.matching));
            assert_eq!(plain.stats.sent, r.stats.sent);
        }
    }
}

/// The per-round series ends on exactly the values `MatchingReport`
/// computes — same summation sequence, so the floats are bit-for-bit equal.
#[test]
fn convergence_series_endpoint_matches_the_report() {
    let p = Problem::random_gnp(60, 0.12, 4, 11);
    let (r, series) = run_lid_sync_series(&p);
    assert!(r.terminated);
    let last = *series.last().expect("at least the round-0 sample");
    let report = MatchingReport::compute(&p, &r.matching);
    assert_eq!(last.matched_edges, r.matching.size());
    assert_eq!(last.total_weight.to_bits(), report.total_weight.to_bits());
    assert_eq!(
        last.satisfaction_total.to_bits(),
        report.satisfaction_total.to_bits()
    );
    assert_eq!(last.terminated_fraction, 1.0);
    assert_eq!(last.in_flight, 0);

    // The JSONL export round-trips the endpoint exactly (shortest-form f64).
    let jsonl = series.to_jsonl();
    let final_line = jsonl.lines().last().unwrap();
    let needle = format!("\"matched_edges\":{}", last.matched_edges);
    assert!(final_line.contains(&needle), "{final_line}");
}

/// Telemetry left off is free: the log stays unallocated and no events are
/// retained, while the simulation result is untouched.
#[test]
fn disabled_telemetry_is_free_and_inert() {
    let log = EventLog::disabled();
    assert!(!log.is_enabled());
    assert_eq!(log.len(), 0);
    assert_eq!(log.events_capacity(), 0, "disabled log must never allocate");

    let p = Problem::random_gnp(30, 0.2, 2, 3);
    // Default config: telemetry off.
    let r = run_lid(&p, SimConfig::with_seed(3));
    assert!(r.terminated);
    let (traced, log) = run_lid_traced(&p, SimConfig::with_seed(3));
    assert!(traced.matching.same_edges(&r.matching));
    assert!(log.is_enabled());
    assert!(log.len() > 0);
}

/// Typed message-kind counters agree with the trace's own tally.
#[test]
fn typed_counters_match_the_trace() {
    let p = Problem::random_gnp(25, 0.25, 3, 7);
    let (r, log) = run_lid_traced(&p, SimConfig::with_seed(7));
    assert!(r.terminated);
    let sent_in_trace = |kind: MessageKind| {
        log.events()
            .iter()
            .filter(|e| matches!(e, TelemetryEvent::Sent { kind: k, .. } if *k == kind))
            .count() as u64
    };
    assert_eq!(r.stats.sent_of(MessageKind::Prop), sent_in_trace(MessageKind::Prop));
    assert_eq!(r.stats.sent_of(MessageKind::Rej), sent_in_trace(MessageKind::Rej));
    assert_eq!(
        r.stats.sent,
        r.stats.sent_of(MessageKind::Prop)
            + r.stats.sent_of(MessageKind::Rej)
            + r.stats.sent_of(MessageKind::Ack)
    );
}

/// Causal determinism: a causally-annotated trace round-trips through its
/// JSONL serialization, the replayed matching equals the live one, and the
/// reconstructed happens-before DAG is identical on both sides — same
/// spans, same parents, same critical path.
#[test]
fn causal_trace_round_trips_and_replays_deterministically() {
    for seed in 0..4u64 {
        let p = Problem::random_gnp(35, 0.2, 3, 40 + seed);
        let cfg = SimConfig::with_seed(seed).latency(LatencyModel::Uniform { lo: 1, hi: 15 });
        let (r, log, dag) = run_lid_causal(&p, cfg);
        assert!(r.terminated);
        assert!(dag.is_certified(), "live trace must certify (Lemma 5)");

        // JSONL round-trip: every event (span records included) survives.
        let reparsed = EventLog::parse_jsonl(&log.to_jsonl()).expect("parses");
        assert_eq!(reparsed.events(), log.events());

        // Replay of the round-tripped trace reconstructs the same matching…
        let replayed = replay_lid_trace(&p, &reparsed);
        assert!(replayed.same_edges(&r.matching), "seed {seed}");

        // …and the same DAG: span-for-span identical parents and outcomes,
        // hence the same critical path.
        let dag2 = CausalDag::from_log(&reparsed);
        assert_eq!(dag2.spans(), dag.spans(), "seed {seed}: DAG diverged");
        let (p1, p2) = (dag.critical_path(), dag2.critical_path());
        assert_eq!(p1.end_time, p2.end_time);
        assert_eq!(
            p1.hops.iter().map(|h| h.span).collect::<Vec<_>>(),
            p2.hops.iter().map(|h| h.span).collect::<Vec<_>>()
        );
    }
}

/// With the `telemetry` feature compiled in, traced runs also carry the
/// per-node protocol transitions; the lock events count both endpoints of
/// every matched edge and every node announces termination exactly once.
#[cfg(feature = "telemetry")]
#[test]
fn node_events_mirror_the_matching() {
    let p = Problem::random_gnp(35, 0.2, 3, 13);
    let (r, log) = run_lid_traced(&p, SimConfig::with_seed(13));
    assert!(r.terminated);
    let count = |tag: &str| log.with_tag(tag).count();
    assert_eq!(count("edge_locked"), 2 * r.matching.size());
    assert_eq!(count("node_terminated"), p.node_count());
}
