//! Integration: Lemma 5 — LID terminates for every node — exercised across
//! topologies, latency regimes and degenerate instances, plus the message-
//! complexity envelope.

use owp_core::run_lid;
use owp_graph::generators::{complete, path, random_regular, ring, star};
use owp_graph::{GraphBuilder, PreferenceTable, Quotas};
use owp_matching::stable::acyclic::rps_gadget;
use owp_matching::Problem;
use owp_simnet::{LatencyModel, MessageKind, SimConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn assert_terminates(p: &Problem, label: &str) {
    for (k, latency) in [
        LatencyModel::unit(),
        LatencyModel::Uniform { lo: 1, hi: 1000 },
        LatencyModel::Exponential { mean: 100.0 },
        LatencyModel::LogNormal { mu: 3.0, sigma: 1.5 },
    ]
    .into_iter()
    .enumerate()
    {
        let r = run_lid(p, SimConfig::with_seed(31 * k as u64 + 1).latency(latency));
        assert!(r.terminated, "{label}: no termination under latency #{k}");
        assert_eq!(r.asymmetric_locks, 0, "{label}");
    }
}

#[test]
fn terminates_on_cyclic_preference_gadget() {
    // The RPS gadget has NO stable matching and better-response dynamics
    // cycle forever — but LID terminates regardless, because eq. 9's
    // symmetric weights admit no communication cycle (Lemma 5).
    let p = rps_gadget();
    assert_terminates(&p, "rps");
    let r = run_lid(&p, SimConfig::with_seed(1));
    assert_eq!(r.matching.size(), 1, "LID picks exactly one edge of K3");
}

#[test]
fn terminates_on_degenerate_instances() {
    // Empty graph.
    let g = GraphBuilder::new(0).build();
    let p = Problem::new(g, PreferenceTable::from_lists(&GraphBuilder::new(0).build(), vec![]).unwrap(), Quotas::uniform(&GraphBuilder::new(0).build(), 2));
    let r = run_lid(&p, SimConfig::with_seed(1));
    assert!(r.terminated);

    // Isolated nodes only.
    let g = GraphBuilder::new(6).build();
    let prefs = PreferenceTable::by_node_id(&g);
    let quotas = Quotas::uniform(&g, 3);
    let p = Problem::new(g, prefs, quotas);
    let r = run_lid(&p, SimConfig::with_seed(2));
    assert!(r.terminated);
    assert_eq!(r.stats.sent, 0);

    // All quotas zero.
    let g = complete(5);
    let prefs = PreferenceTable::by_node_id(&g);
    let quotas = Quotas::from_vec(&g, vec![0; 5]);
    let p = Problem::new(g, prefs, quotas);
    let r = run_lid(&p, SimConfig::with_seed(3));
    assert!(r.terminated);
    assert_eq!(r.matching.size(), 0);
}

#[test]
fn terminates_on_classic_topologies() {
    let mut rng = StdRng::seed_from_u64(9);
    for (name, g) in [
        ("path", path(30)),
        ("ring", ring(30)),
        ("star", star(30)),
        ("complete", complete(16)),
        ("regular", random_regular(30, 4, &mut rng)),
    ] {
        for b in [1, 2, 5] {
            let p = Problem::random_over(g.clone(), b, b as u64 * 7 + 3);
            assert_terminates(&p, &format!("{name} b={b}"));
        }
    }
}

#[test]
fn message_complexity_at_most_two_per_edge_direction() {
    // Structural bound: each node sends ≤ 1 PROP per neighbour and ≤ 2 REJ
    // per neighbour (termination broadcast + crossing-PROP reply), so
    // total ≤ 6m; in practice far less. Assert the hard envelope and that
    // PROP ≤ 2m exactly.
    for seed in 0..6 {
        let p = Problem::random_gnp(60, 0.15, 4, seed);
        let m = p.edge_count() as u64;
        let r = run_lid(&p, SimConfig::with_seed(seed));
        assert!(r.terminated);
        assert!(r.stats.sent_of(MessageKind::Prop) <= 2 * m, "PROP count exceeds 2m");
        assert!(r.stats.sent <= 6 * m, "total {} > 6m = {}", r.stats.sent, 6 * m);
    }
}

#[test]
fn end_time_scales_with_latency_not_topology_size_alone() {
    // Constant latency c: end time is c × (longest PROP/REJ chain). The
    // chain shortens as quota rises (fewer rejections ripple); just assert
    // end time grows linearly in c for fixed instance.
    let p = Problem::random_gnp(40, 0.2, 2, 77);
    let t1 = run_lid(&p, SimConfig::with_seed(1).latency(LatencyModel::Constant { ticks: 1 }));
    let t5 = run_lid(&p, SimConfig::with_seed(1).latency(LatencyModel::Constant { ticks: 5 }));
    assert!(t1.terminated && t5.terminated);
    assert_eq!(t5.end_time, 5 * t1.end_time, "constant-latency scaling");
    assert!(t1.matching.same_edges(&t5.matching));
}
