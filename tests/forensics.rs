//! Acceptance test for the forensic subsystem (ISSUE 7): on a seeded
//! n=5000 churn stream, an injected corruption — a forced quota overflow
//! (phantom edge) or a tampered weight (skipped preference repair) —
//! must produce a self-contained post-mortem bundle whose auto-shrunk
//! reproducer is at most 10 recorded steps and, after a JSON round-trip,
//! replays from the bundled checkpoint to the *same* certification
//! violation against a fresh engine.

use owp_engine::{
    normalize_violation, Engine, EngineEvent, ForensicBundle, InjectedFault,
};
use owp_graph::{EdgeId, Graph, NodeId};
use owp_matching::Problem;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

const N: usize = 5_000;
const WARM_BATCHES: usize = 14;
const EVENTS_PER_BATCH: usize = 50;
const HISTORY: usize = 16;

/// A recording engine warmed on a seeded mixed-event stream. Events are
/// generated against a membership mirror so every batch validates.
fn warmed_engine(seed: u64) -> (Engine, Graph) {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = owp_graph::generators::barabasi_albert(N, 4, &mut rng);
    let p = Problem::random_over(g.clone(), 3, seed);
    let mut e = Engine::builder(p).history_capacity(HISTORY).build();

    let mut active = vec![true; g.node_count()];
    let mut inactive: Vec<NodeId> = Vec::new();
    let mut present = vec![true; g.edge_count()];
    let mut absent: Vec<EdgeId> = Vec::new();
    for _ in 0..WARM_BATCHES {
        let mut batch = Vec::with_capacity(EVENTS_PER_BATCH);
        while batch.len() < EVENTS_PER_BATCH {
            match rng.gen_range(0u32..100) {
                0..=34 => {
                    let i = NodeId(rng.gen_range(0..g.node_count() as u32));
                    if active[i.index()] {
                        active[i.index()] = false;
                        inactive.push(i);
                        batch.push(EngineEvent::NodeLeave { node: i });
                    }
                }
                35..=69 => {
                    if !inactive.is_empty() {
                        let i = inactive.swap_remove(rng.gen_range(0..inactive.len()));
                        active[i.index()] = true;
                        batch.push(EngineEvent::NodeJoin { node: i });
                    }
                }
                70..=79 => {
                    let ed = EdgeId(rng.gen_range(0..g.edge_count() as u32));
                    if present[ed.index()] {
                        present[ed.index()] = false;
                        absent.push(ed);
                        let (u, v) = g.endpoints(ed);
                        batch.push(EngineEvent::EdgeRemove { u, v });
                    }
                }
                80..=89 => {
                    if !absent.is_empty() {
                        let ed = absent.swap_remove(rng.gen_range(0..absent.len()));
                        present[ed.index()] = true;
                        let (u, v) = g.endpoints(ed);
                        batch.push(EngineEvent::EdgeAdd { u, v });
                    }
                }
                90..=94 => {
                    batch.push(EngineEvent::QuotaChange {
                        node: NodeId(rng.gen_range(0..g.node_count() as u32)),
                        quota: rng.gen_range(1u32..=5),
                    });
                }
                _ => {
                    let i = NodeId(rng.gen_range(0..g.node_count() as u32));
                    let mut list: Vec<NodeId> = g.neighbor_ids(i).collect();
                    list.shuffle(&mut rng);
                    batch.push(EngineEvent::PreferenceUpdate { node: i, list });
                }
            }
        }
        e.apply_batch(&batch).expect("generated batches are valid");
    }
    e.certify().expect("warmed engine is canonical before injection");
    (e, g)
}

/// The full dump → shrink → round-trip → replay loop for one fault.
fn assert_forensic_loop(mut e: Engine, fault: InjectedFault, seed: u64) {
    e.inject_fault(fault);
    let bundle = e
        .certify_with_forensics(Some(seed), None)
        .expect_err("an injected corruption must fail certification");

    // Self-contained: provenance and both state snapshots are embedded.
    assert!(!bundle.reason.is_empty());
    assert_eq!(bundle.trigger, "certify");
    assert_eq!(bundle.seed, Some(seed));
    assert!(!bundle.config.is_empty(), "engine config recorded");
    assert!(bundle.origin.is_some(), "membership checkpoint embedded");
    assert!(bundle.ring_capacity > 0, "flight ring contents embedded");

    // Auto-shrunk: the reproducer is a small suffix of the window.
    let shrunk = bundle.shrunk.as_ref().expect("failure inside the window shrinks");
    let repro = bundle.reproducer();
    assert!(
        repro.len() <= 10,
        "reproducer must be at most 10 steps, got {} (window {}..={} of {})",
        repro.len(),
        shrunk.start,
        shrunk.end,
        bundle.steps.len(),
    );
    assert!(
        repro.iter().any(|s| s.fault.is_some()),
        "the reproducer keeps the injected fault"
    );

    // Round-trip through the JSON the dump writes to disk.
    let restored = ForensicBundle::parse(&bundle.to_json()).expect("bundle JSON parses");
    assert_eq!(restored, *bundle, "bundle survives serialization bit-for-bit");

    // Replay against a fresh engine: same violation, epoch prefix aside.
    let violation = restored
        .verify()
        .expect("bundled stream is re-executable")
        .expect("reproducer still fails");
    assert_eq!(
        normalize_violation(&violation),
        normalize_violation(&bundle.reason),
        "replay must reproduce the recorded divergence"
    );
}

#[test]
fn phantom_edge_on_large_stream_shrinks_and_reproduces() {
    let (e, g) = warmed_engine(0xF0);
    let dp = e.dynamic();
    let edge = g
        .edges()
        .find(|&ed| dp.is_alive(ed) && !e.matching().contains(ed))
        .expect("churned BA instance leaves unselected alive edges");
    assert_forensic_loop(e, InjectedFault::PhantomEdge { edge }, 0xF0);
}

#[test]
fn skipped_repair_on_large_stream_shrinks_and_reproduces() {
    let (e, g) = warmed_engine(0xF1);
    let fault = g
        .nodes()
        .filter(|&i| e.dynamic().is_active(i))
        .find_map(|node| {
            let mut list: Vec<NodeId> = g.neighbor_ids(node).collect();
            if list.len() < 2 {
                return None;
            }
            list.reverse();
            let mut probe = e.clone();
            probe.inject_fault(InjectedFault::SkippedRepair { node, list: list.clone() });
            probe
                .certify()
                .is_err()
                .then_some(InjectedFault::SkippedRepair { node, list })
        })
        .expect("some preference reversal perturbs the matching");
    assert_forensic_loop(e, fault, 0xF1);
}

/// The bundle is inert on a healthy engine: a manual capture replays
/// clean, so `verify` distinguishes live failures from stale reports.
#[test]
fn healthy_manual_capture_replays_clean() {
    let (e, _) = warmed_engine(0xF2);
    let bundle = e.capture_bundle("manual", "operator snapshot", Some(0xF2), None);
    assert!(bundle.shrunk.is_none(), "nothing to shrink on a healthy window");
    assert_eq!(
        bundle.verify().expect("stream is re-executable"),
        None,
        "a healthy window must not fabricate a failure"
    );
}
