//! Shard-boundary correctness: the sharded two-phase engine must be a
//! *bit-identical* drop-in for the sequential engine — same matching,
//! same delta reports, same satisfaction — for every shard count, after
//! every batch of every stream. The canonical matching is unique (the
//! paper's Lemmas 3–6 confluence), so any divergence is a bug in the
//! phase-1 freeze or the phase-2 merge, and `certify()` (from-scratch
//! LIC) arbitrates against both.
//!
//! ≥200 seeded mixed event streams run through k ∈ {1, 2, 4, 8} shards
//! in lockstep with an unsharded reference (ISSUE 6 satellite); the
//! instances are small enough that most edges are boundary edges at
//! k = 8 — the adversarial regime for the merge.

use owp_engine::{DeltaReport, Engine, EngineEvent};
use owp_graph::{EdgeId, Graph, NodeId};
use owp_matching::Problem;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Seeded streams for the lockstep test — the ISSUE floor is 200.
const STREAMS: u64 = 210;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One random universe instance: G(n, 0.4) with n ∈ [2, 20], random
/// preference permutations, uniform quotas b ∈ [1, 4] — the same
/// distribution as `engine_equivalence.rs`, so the two suites disagree
/// only if sharding itself does.
fn universe(meta: &mut StdRng) -> Problem {
    let n = meta.gen_range(2usize..=20);
    let b = meta.gen_range(1u32..=4);
    Problem::random_gnp(n, 0.4, b, meta.gen_range(0..=u64::MAX))
}

/// Draws the next valid event given mirrors of the membership flags,
/// keeping the mirrors in sync so whole batches stay valid.
fn next_event(
    rng: &mut StdRng,
    g: &Graph,
    active: &mut [bool],
    present: &mut [bool],
) -> EngineEvent {
    let n = g.node_count() as u32;
    let m = g.edge_count() as u32;
    loop {
        match rng.gen_range(0u32..100) {
            0..=24 => {
                let i = NodeId(rng.gen_range(0..n));
                if active[i.index()] {
                    active[i.index()] = false;
                    return EngineEvent::NodeLeave { node: i };
                }
            }
            25..=49 => {
                let i = NodeId(rng.gen_range(0..n));
                if !active[i.index()] {
                    active[i.index()] = true;
                    return EngineEvent::NodeJoin { node: i };
                }
            }
            50..=61 if m > 0 => {
                let e = EdgeId(rng.gen_range(0..m));
                if present[e.index()] {
                    present[e.index()] = false;
                    let (u, v) = g.endpoints(e);
                    return EngineEvent::EdgeRemove { u, v };
                }
            }
            62..=73 if m > 0 => {
                let e = EdgeId(rng.gen_range(0..m));
                if !present[e.index()] {
                    present[e.index()] = true;
                    let (u, v) = g.endpoints(e);
                    return EngineEvent::EdgeAdd { u, v };
                }
            }
            74..=86 => {
                let i = NodeId(rng.gen_range(0..n));
                return EngineEvent::QuotaChange { node: i, quota: rng.gen_range(0..=5) };
            }
            87.. => {
                let i = NodeId(rng.gen_range(0..n));
                let mut list: Vec<NodeId> = g.neighbor_ids(i).collect();
                list.shuffle(rng);
                return EngineEvent::PreferenceUpdate { node: i, list };
            }
            _ => {}
        }
    }
}

/// Certify after **every batch at every shard count**, and assert every
/// observable of the sharded engines is bit-identical to the reference.
#[test]
fn every_shard_count_is_bit_identical_on_every_stream() {
    for seed in 0..STREAMS {
        let mut meta = StdRng::seed_from_u64(0x5AAD ^ seed);
        let p = universe(&mut meta);
        let g = p.graph.clone();
        let mut active = vec![true; g.node_count()];
        let mut present = vec![true; g.edge_count()];
        let mut reference = Engine::new(p.clone());
        let mut sharded: Vec<Engine> = SHARD_COUNTS
            .iter()
            .map(|&k| Engine::builder(p.clone()).shards(k).threads(1).build())
            .collect();
        let mut reports: Vec<DeltaReport> =
            SHARD_COUNTS.iter().map(|_| DeltaReport::default()).collect();
        for batch_no in 0..5 {
            let len = meta.gen_range(1usize..=10);
            let batch: Vec<EngineEvent> = (0..len)
                .map(|_| next_event(&mut meta, &g, &mut active, &mut present))
                .collect();
            let r0 = reference.apply_batch(&batch).unwrap_or_else(|e| {
                panic!("stream {seed} batch {batch_no}: reference rejected: {e}")
            });
            for (slot, engine) in sharded.iter_mut().enumerate() {
                let k = SHARD_COUNTS[slot];
                let report = &mut reports[slot];
                engine.apply_batch_into(&batch, report).unwrap_or_else(|e| {
                    panic!("stream {seed} batch {batch_no} k={k}: rejected: {e}")
                });
                assert!(
                    engine.matching().same_edges(reference.matching()),
                    "stream {seed} batch {batch_no} k={k}: matching diverged"
                );
                assert_eq!(
                    report.edges_added, r0.edges_added,
                    "stream {seed} batch {batch_no} k={k}: added-delta diverged"
                );
                assert_eq!(
                    report.edges_removed, r0.edges_removed,
                    "stream {seed} batch {batch_no} k={k}: removed-delta diverged"
                );
                assert_eq!(report.matching_size, r0.matching_size);
                assert_eq!(report.epoch, r0.epoch);
                assert!(
                    (report.total_satisfaction - r0.total_satisfaction).abs() < 1e-9,
                    "stream {seed} batch {batch_no} k={k}: ΣS diverged"
                );
                engine.certify().unwrap_or_else(|err| {
                    panic!("stream {seed} batch {batch_no} k={k}: {err}")
                });
            }
        }
    }
}

/// The partitioner trait is engine-facing API: a custom partitioner must
/// be honoured and still converge to the canonical matching.
#[test]
fn custom_partitioners_still_certify() {
    use owp_engine::Partitioner;

    /// Worst-case locality: round-robin striping puts *every* edge on a
    /// boundary for k ≥ 2 — the merge does all the work.
    struct Stripe;
    impl Partitioner for Stripe {
        fn assign(&self, g: &Graph, k: usize) -> Vec<u32> {
            (0..g.node_count()).map(|i| (i % k) as u32).collect()
        }
    }

    for seed in 0..25 {
        let mut meta = StdRng::seed_from_u64(0xC0FFEE ^ seed);
        let p = universe(&mut meta);
        let g = p.graph.clone();
        let mut active = vec![true; g.node_count()];
        let mut present = vec![true; g.edge_count()];
        let mut reference = Engine::new(p.clone());
        let mut striped = Engine::builder(p)
            .shards(4)
            .threads(1)
            .partitioner(Box::new(Stripe))
            .build();
        for batch_no in 0..6 {
            let batch = vec![next_event(&mut meta, &g, &mut active, &mut present)];
            reference.apply_batch(&batch).unwrap();
            striped.apply_batch(&batch).unwrap();
            assert!(
                striped.matching().same_edges(reference.matching()),
                "stream {seed} batch {batch_no}: striped partition diverged"
            );
            striped.certify().unwrap_or_else(|err| {
                panic!("stream {seed} batch {batch_no}: {err}")
            });
        }
    }
}

/// `OWP_THREADS` only controls the worker budget, never the result: with
/// the `parallel` feature off this is a pure pass-through check of the
/// builder's env plumbing; with it on, it exercises the fork tree.
#[test]
fn thread_budget_never_changes_the_result() {
    for seed in 0..25 {
        let mut meta = StdRng::seed_from_u64(0x7EAD ^ seed);
        let p = universe(&mut meta);
        let g = p.graph.clone();
        let mut active = vec![true; g.node_count()];
        let mut present = vec![true; g.edge_count()];
        let mut engines: Vec<Engine> = [1usize, 2, 4, 8]
            .iter()
            .map(|&t| Engine::builder(p.clone()).shards(8).threads(t).build())
            .collect();
        assert_eq!(engines[2].thread_count(), 4.min(8));
        for _batch_no in 0..5 {
            let batch = vec![next_event(&mut meta, &g, &mut active, &mut present)];
            let mut first: Option<DeltaReport> = None;
            for engine in &mut engines {
                let r = engine.apply_batch(&batch).unwrap();
                match &first {
                    None => first = Some(r),
                    Some(r0) => {
                        assert_eq!(&r, r0, "thread budget changed an observable");
                    }
                }
            }
            engines[0].certify().unwrap();
        }
    }
}
