//! Randomized event-stream equivalence: the engine's headline property is
//! that after *any* valid event stream its matching is bit-identical to a
//! from-scratch LIC run on the instance the stream produced. This suite
//! drives hundreds of seeded streams — mixed joins, leaves, edge churn,
//! quota changes and preference re-ranks, batched arbitrarily — and
//! certifies after every batch.
//!
//! Alongside the matching, the two maintained derivatives are certified
//! too: the eq. 9 weights / rank kernel (spliced incrementally per batch)
//! against a fresh full recompute, and the incrementally-tracked total
//! satisfaction against a direct sum.

use owp_engine::{Engine, EngineEvent};
use owp_graph::{EdgeId, Graph, NodeId};
use owp_matching::satisfaction::node_satisfaction;
use owp_matching::{EdgeOrder, EdgeWeights, Problem};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Independent seeded streams per test — the ISSUE floor is 200 total;
/// the main certification test alone runs more.
const STREAMS: u64 = 220;

/// One random universe instance: G(n, 0.4) with n ∈ [2, 20], random
/// preference permutations, uniform quotas b ∈ [1, 4].
fn universe(meta: &mut StdRng) -> Problem {
    let n = meta.gen_range(2usize..=20);
    let b = meta.gen_range(1u32..=4);
    Problem::random_gnp(n, 0.4, b, meta.gen_range(0..=u64::MAX))
}

/// Draws the next valid event given mirrors of the membership flags,
/// keeping the mirrors in sync so whole batches stay valid.
fn next_event(
    rng: &mut StdRng,
    g: &Graph,
    active: &mut [bool],
    present: &mut [bool],
) -> EngineEvent {
    let n = g.node_count() as u32;
    let m = g.edge_count() as u32;
    loop {
        match rng.gen_range(0u32..100) {
            0..=24 => {
                let i = NodeId(rng.gen_range(0..n));
                if active[i.index()] {
                    active[i.index()] = false;
                    return EngineEvent::NodeLeave { node: i };
                }
            }
            25..=49 => {
                let i = NodeId(rng.gen_range(0..n));
                if !active[i.index()] {
                    active[i.index()] = true;
                    return EngineEvent::NodeJoin { node: i };
                }
            }
            50..=61 if m > 0 => {
                let e = EdgeId(rng.gen_range(0..m));
                if present[e.index()] {
                    present[e.index()] = false;
                    let (u, v) = g.endpoints(e);
                    return EngineEvent::EdgeRemove { u, v };
                }
            }
            62..=73 if m > 0 => {
                let e = EdgeId(rng.gen_range(0..m));
                if !present[e.index()] {
                    present[e.index()] = true;
                    let (u, v) = g.endpoints(e);
                    return EngineEvent::EdgeAdd { u, v };
                }
            }
            74..=86 => {
                let i = NodeId(rng.gen_range(0..n));
                // Quota 0 is legal: the peer stays active but can hold no
                // connections, which zeroes its incident eq. 9 weights.
                return EngineEvent::QuotaChange { node: i, quota: rng.gen_range(0..=5) };
            }
            87.. => {
                let i = NodeId(rng.gen_range(0..n));
                let mut list: Vec<NodeId> = g.neighbor_ids(i).collect();
                list.shuffle(rng);
                return EngineEvent::PreferenceUpdate { node: i, list };
            }
            _ => {}
        }
    }
}

/// Drives one seeded stream of `batches` batches through `engine`,
/// invoking `check` after every applied batch.
fn drive(seed: u64, batches: usize, mut check: impl FnMut(&Engine, usize)) {
    let mut meta = StdRng::seed_from_u64(seed);
    let p = universe(&mut meta);
    let g = p.graph.clone();
    let mut active = vec![true; g.node_count()];
    let mut present = vec![true; g.edge_count()];
    let mut engine = Engine::new(p);
    for batch_no in 0..batches {
        let len = meta.gen_range(1usize..=10);
        let batch: Vec<EngineEvent> = (0..len)
            .map(|_| next_event(&mut meta, &g, &mut active, &mut present))
            .collect();
        engine
            .apply_batch(&batch)
            .unwrap_or_else(|e| panic!("stream {seed} batch {batch_no}: generated event rejected: {e}"));
        check(&engine, batch_no);
    }
}

#[test]
fn every_stream_stays_certified_after_every_batch() {
    for seed in 0..STREAMS {
        drive(seed, 5, |engine, batch_no| {
            engine.certify().unwrap_or_else(|err| {
                panic!("stream {seed} batch {batch_no}: {err}")
            });
        });
    }
}

#[test]
fn weights_and_ranks_track_the_mutated_instance() {
    // Fewer, longer streams: the full eq. 9 + rank recompute per batch is
    // the expensive reference here, not the engine.
    for seed in 1000..1000 + STREAMS / 4 {
        drive(seed, 8, |engine, batch_no| {
            let dp = engine.dynamic();
            let fresh = EdgeWeights::compute(dp.graph(), dp.prefs(), dp.quotas());
            for e in dp.graph().edges() {
                assert_eq!(
                    dp.weights().get(e),
                    fresh.get(e),
                    "stream {seed} batch {batch_no}: maintained weight of {e:?} drifted"
                );
            }
            let fresh_order = EdgeOrder::compute(dp.graph(), dp.weights());
            assert_eq!(
                dp.order(),
                &fresh_order,
                "stream {seed} batch {batch_no}: spliced rank kernel drifted"
            );
        });
    }
}

#[test]
fn satisfaction_is_maintained_incrementally() {
    for seed in 2000..2000 + STREAMS / 4 {
        drive(seed, 8, |engine, batch_no| {
            let dp = engine.dynamic();
            let direct: f64 = dp
                .graph()
                .nodes()
                .map(|i| {
                    if dp.is_active(i) {
                        node_satisfaction(
                            dp.prefs(),
                            dp.quotas(),
                            i,
                            engine.matching().connections(i),
                        )
                    } else {
                        0.0
                    }
                })
                .sum();
            assert!(
                (engine.total_satisfaction() - direct).abs() < 1e-9,
                "stream {seed} batch {batch_no}: incremental ΣS {} vs direct {direct}",
                engine.total_satisfaction()
            );
            for i in dp.graph().nodes() {
                if !dp.is_active(i) {
                    assert_eq!(
                        engine.satisfaction(i),
                        0.0,
                        "stream {seed} batch {batch_no}: inactive {i:?} has satisfaction"
                    );
                }
            }
        });
    }
}

#[test]
fn quiescent_instances_report_quiescent_batches() {
    // A batch that leaves and immediately re-adds nothing relevant — the
    // repair may evaluate edges but must not change the matching, and a
    // certified engine must agree with itself across an empty tick.
    for seed in 3000..3020 {
        let mut meta = StdRng::seed_from_u64(seed);
        let p = universe(&mut meta);
        let mut engine = Engine::new(p);
        let before = engine.matching().clone();
        let r = engine.apply_batch(&[]).unwrap();
        assert!(r.is_quiescent(), "stream {seed}: empty batch changed something");
        assert!(engine.matching().same_edges(&before));
        engine.certify().unwrap();
    }
}
