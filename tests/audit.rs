//! Integration tests of the metrics + audit layer through the umbrella
//! crate: real protocol runs and engine sequences certified clean by the
//! online auditor, deliberate corruption detected as structured violations,
//! and the `MetricsRecorder` cross-checked against the simulator's own
//! `NetStats`.

use overlays_preferences::owp_matching::weights::EdgeWeights;
use overlays_preferences::owp_matching::Rational;
use overlays_preferences::owp_metrics::InvariantKind;
use overlays_preferences::prelude::*;

/// A full asynchronous LID run audits clean: eq. 9 weights verify, the
/// final matching carries the Lemma 4 certificate, and the health gauges
/// land where Theorem 2 says they must (0 blocking edges, ratio in (0,1]).
#[test]
fn lid_runs_are_certified_clean() {
    let reg = MetricsRegistry::new();
    let mut auditor = Auditor::new(&reg);
    for seed in 0..4u64 {
        let p = Problem::random_gnp(60, 0.15, 3, seed);
        let r = run_lid(&p, SimConfig::with_seed(seed));
        assert!(r.terminated);
        assert_eq!(auditor.audit_weights(&p), 0);
        assert_eq!(auditor.audit_matching(&p, &r.matching), 0);
    }
    assert!(auditor.is_clean());
    assert_eq!(reg.counter("audit_violations_total").get(), 0);
    assert_eq!(reg.counter("audit_checks_total").get(), 8);
    assert_eq!(reg.gauge("audit_epsilon_blocking_edges").get(), 0.0);
    let ratio = reg.gauge("audit_satisfaction_ratio").get();
    assert!(ratio > 0.0 && ratio <= 1.0, "ratio {ratio}");
}

/// An engine absorbing churn batches stays certified: every `DeltaReport`
/// epoch advances, and after every batch the maintained matching equals
/// the canonical greedy matching over the alive edge set.
#[test]
fn engine_churn_is_certified_clean() {
    let reg = MetricsRegistry::new();
    let mut auditor = Auditor::new(&reg);
    let p = Problem::random_gnp(80, 0.1, 3, 7);
    let n = p.node_count() as u32;
    let mut engine = Engine::new(p);

    let batches: Vec<Vec<EngineEvent>> = vec![
        vec![
            EngineEvent::NodeLeave { node: NodeId(3) },
            EngineEvent::NodeLeave { node: NodeId(11) },
            EngineEvent::QuotaChange { node: NodeId(5), quota: 1 },
        ],
        vec![
            EngineEvent::NodeJoin { node: NodeId(3) },
            EngineEvent::QuotaChange { node: NodeId(5), quota: 5 },
            EngineEvent::NodeLeave { node: NodeId(n - 1) },
        ],
        vec![EngineEvent::NodeJoin { node: NodeId(11) }],
    ];
    for batch in &batches {
        let report = engine.apply_batch(batch).expect("valid batches");
        assert_eq!(auditor.observe_delta(&report), 0);
        assert_eq!(auditor.audit_engine(&engine), 0);
    }
    assert!(auditor.is_clean(), "{}", auditor.to_jsonl());
    // One delta observation + one engine audit per batch.
    assert_eq!(reg.counter("audit_checks_total").get(), 2 * batches.len() as u64);
    assert!(reg.gauge("audit_engine_matching_size").get() > 0.0);
    assert!(reg.gauge("audit_engine_satisfaction").get() > 0.0);
}

/// Deliberate corruption: forcing an edge onto a saturated node yields
/// `QuotaFeasibility` (and usually `Mutuality`-clean but `LocallyHeaviest`
/// may also fire) — reported, never panicking, and serialized as JSONL.
#[test]
fn corrupted_matching_yields_structured_violations() {
    let p = Problem::random_gnp(50, 0.2, 2, 21);
    let mut m = lic(&p, SelectionPolicy::InOrder);
    let full = p
        .graph
        .nodes()
        .find(|&i| m.degree(i) == p.quotas.get(i) as usize && p.quotas.get(i) > 0)
        .expect("a saturated node");
    let extra = p
        .graph
        .neighbors(full)
        .iter()
        .map(|&(_, e)| e)
        .find(|&e| !m.contains(e))
        .expect("an unselected incident edge");
    m.insert_unchecked(&p.graph, extra);

    let reg = MetricsRegistry::new();
    let mut auditor = Auditor::new(&reg);
    let added = auditor.audit_matching(&p, &m);
    assert!(added > 0);
    assert!(auditor
        .report()
        .iter()
        .any(|v| v.kind == InvariantKind::QuotaFeasibility));
    assert_eq!(reg.counter("audit_violations_total").get(), added as u64);
    // Degraded mode: the dirty pass must not refresh the ratio gauges.
    assert_eq!(reg.gauge("audit_satisfaction_ratio").get(), 0.0);
    for line in auditor.to_jsonl().lines() {
        assert!(line.starts_with("{\"kind\":\""), "{line}");
    }
}

/// Deliberate corruption: a weight table that disagrees with eq. 9 is
/// caught by the symmetry audit.
#[test]
fn tampered_weights_yield_symmetry_violation() {
    let p = Problem::random_gnp(40, 0.2, 2, 22);
    let mut raw: Vec<Rational> = p.graph.edges().map(|e| p.weights.get(e)).collect();
    raw[0] = raw[0] + Rational::new(1, 3);
    let tampered = Problem::with_weights(
        p.graph.clone(),
        p.prefs.clone(),
        p.quotas.clone(),
        EdgeWeights::from_raw(raw),
    );
    let reg = MetricsRegistry::new();
    let mut auditor = Auditor::new(&reg);
    assert_eq!(auditor.audit_weights(&tampered), 1);
    assert_eq!(auditor.report()[0].kind, InvariantKind::WeightSymmetry);
    assert!(!auditor.is_clean());
}

/// Acceptance: a seeded LID run over an n = 5000 Barabási–Albert overlay
/// yields an acyclic happens-before DAG — the causal audit certifies it
/// clean and publishes the critical path through the
/// `lid_critical_path_len` / `lid_critical_path_latency` gauges.
#[test]
fn causal_certificate_at_scale_sets_the_gauges() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(5);
    let g = overlays_preferences::owp_graph::generators::barabasi_albert(5000, 4, &mut rng);
    let p = Problem::random_over(g, 3, 5);
    let cfg = SimConfig::with_seed(5).latency(LatencyModel::Uniform { lo: 1, hi: 20 });
    let (r, _log, dag) = run_lid_causal(&p, cfg);
    assert!(r.terminated);
    assert_eq!(dag.len() as u64, r.stats.sent);

    let reg = MetricsRegistry::new();
    let mut auditor = Auditor::new(&reg);
    assert_eq!(auditor.audit_causal(&dag), 0, "{:?}", dag.verify());
    assert!(auditor.is_clean());

    let len = reg.gauge("lid_critical_path_len").get();
    let latency = reg.gauge("lid_critical_path_latency").get();
    assert!(len >= 1.0, "critical path must be non-empty, gauge = {len}");
    assert_eq!(len, dag.critical_path_len() as f64);
    assert_eq!(latency, dag.critical_path().total_latency() as f64);
    assert!(latency as u64 <= r.end_time);
}

/// An injected cycle in a tampered trace is detected as a structured
/// `CausalAcyclicity` auditor violation — never a panic — and the dirty
/// pass leaves the critical-path gauges in degraded mode.
#[test]
fn tampered_causal_trace_yields_cycle_violation() {
    let p = Problem::random_gnp(30, 0.25, 2, 77);
    let cfg = SimConfig::with_seed(77).latency(LatencyModel::Uniform { lo: 1, hi: 9 });
    let (r, log, dag) = run_lid_causal(&p, cfg);
    assert!(r.terminated);
    assert!(dag.is_certified());

    // Tamper with the serialized trace: pick a root that caused at least
    // one child and rewrite its parent to that child, closing a 2-cycle.
    let (root, child) = dag
        .spans()
        .iter()
        .filter_map(|s| s.parent.map(|pid| (pid, s.span)))
        .find(|(pid, _)| dag.span(*pid).is_some_and(|ps| ps.parent.is_none()))
        .expect("a root span with a child");
    let doc = log.to_jsonl();
    let needle = format!("\"span\":{},\"parent\":null", root.0);
    let patched = format!("\"span\":{},\"parent\":{}", root.0, child.0);
    let tampered = doc.replacen(&needle, &patched, 1);
    assert_ne!(tampered, doc, "the root's span_sent line must exist");

    let bad_log = EventLog::parse_jsonl(&tampered).expect("tampered trace still parses");
    let bad_dag = CausalDag::from_log(&bad_log); // reconstruction never panics
    assert!(!bad_dag.is_certified());

    let reg = MetricsRegistry::new();
    let mut auditor = Auditor::new(&reg);
    let added = auditor.audit_causal(&bad_dag);
    assert!(added > 0);
    assert!(auditor
        .report()
        .iter()
        .all(|v| v.kind == InvariantKind::CausalAcyclicity));
    assert!(
        auditor.report().iter().any(|v| v.detail.contains("cycle_detected")),
        "{}",
        auditor.to_jsonl()
    );
    assert_eq!(reg.counter("audit_violations_total").get(), added as u64);
    // Degraded mode: no critical path published from an uncertified DAG.
    assert_eq!(reg.gauge("lid_critical_path_len").get(), 0.0);
    for line in auditor.to_jsonl().lines() {
        assert!(line.contains("\"kind\":\"causal_acyclicity\""), "{line}");
    }
}

/// The `MetricsRecorder`'s message counters are exactly the simulator's
/// `NetStats`, and send→deliver pairings fill the latency histogram with
/// one sample per delivery.
#[test]
fn recorder_counters_match_netstats() {
    for seed in [0u64, 9, 42] {
        let p = Problem::random_gnp(50, 0.15, 3, seed);
        let cfg = SimConfig::with_seed(seed)
            .latency(LatencyModel::Uniform { lo: 1, hi: 9 })
            .telemetry();
        let (r, log) = run_lid_traced(&p, cfg);
        assert!(r.terminated);

        let reg = MetricsRegistry::new();
        let mut rec = MetricsRecorder::new(&reg);
        rec.consume(&log);

        assert_eq!(reg.counter("messages_sent_total").get(), r.stats.sent);
        assert_eq!(reg.counter("messages_delivered_total").get(), r.stats.delivered);
        assert_eq!(reg.counter("messages_dropped_total").get(), r.stats.dropped);
        assert_eq!(
            reg.counter("messages_dead_lettered_total").get(),
            r.stats.dead_lettered
        );
        let lat = reg.histogram("message_latency_ticks");
        assert_eq!(lat.count(), r.stats.delivered);
        assert!(lat.sum() >= lat.count(), "every delivery takes ≥ 1 tick");

        // The snapshot of this registry round-trips through both exporters.
        let snap = reg.snapshot();
        let json = MetricsSnapshot::parse_json(&snap.to_json()).expect("JSON round-trip");
        assert_eq!(json.to_json(), snap.to_json());
        let prom =
            MetricsSnapshot::parse_prometheus(&snap.to_prometheus()).expect("prom round-trip");
        assert_eq!(prom.to_prometheus(), snap.to_prometheus());
    }
}
