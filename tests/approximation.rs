//! Integration: the paper's approximation guarantees hold on every instance
//! we can solve exactly.
//!
//! * Theorem 2: `w(LIC) ≥ ½ · w(OPT)`;
//! * Theorem 3: `S(LID) ≥ ¼(1 + 1/b_max) · S(OPT)`;
//! * Lemma 1's bound is *tight* on the constructed gadget family.

use owp_core::run_lid;
use owp_matching::bounds::{lemma1_tight_instance, overall_bound};
use owp_matching::exact::{optimal_satisfaction, optimal_weight, DEFAULT_BUDGET};
use owp_matching::lic::{lic, SelectionPolicy};
use owp_matching::Problem;
use owp_simnet::SimConfig;

#[test]
fn theorem2_weight_half_approximation() {
    for seed in 0..20 {
        for (n, p_edge, b) in [(12, 0.4, 1), (12, 0.4, 2), (10, 0.6, 3)] {
            let p = Problem::random_gnp(n, p_edge, b, seed);
            let greedy = lic(&p, SelectionPolicy::InOrder).total_weight(&p);
            let opt = optimal_weight(&p, DEFAULT_BUDGET);
            assert!(opt.proven_optimal, "budget exhausted at seed {seed}");
            assert!(
                greedy >= 0.5 * opt.value - 1e-9,
                "seed {seed} n={n} b={b}: {greedy} < ½·{}",
                opt.value
            );
        }
    }
}

#[test]
fn theorem3_satisfaction_quarter_bound() {
    for seed in 0..15 {
        for b in [1u32, 2, 3] {
            let p = Problem::random_gnp(11, 0.5, b, 100 + seed);
            if p.bmax() == 0 {
                continue; // degenerate: no edges
            }
            let lid = run_lid(&p, SimConfig::with_seed(seed));
            assert!(lid.terminated);
            let achieved = lid.matching.total_satisfaction(&p);
            let opt = optimal_satisfaction(&p, DEFAULT_BUDGET);
            assert!(opt.proven_optimal);
            let opt_total = opt.matching.total_satisfaction(&p);
            let bound = overall_bound(p.bmax());
            assert!(
                achieved >= bound * opt_total - 1e-9,
                "seed {seed} b={b}: {achieved} < {bound}·{opt_total}"
            );
        }
    }
}

#[test]
fn measured_ratios_are_far_above_worst_case_on_random_instances() {
    // The proven bounds are worst-case; random instances should do much
    // better (the experiments report ~0.9+). Assert a loose version so the
    // suite catches algorithmic regressions that stay above ¼.
    let mut total_ratio = 0.0;
    let mut count = 0;
    for seed in 0..10 {
        let p = Problem::random_gnp(12, 0.4, 2, 500 + seed);
        if p.edge_count() == 0 {
            continue;
        }
        let greedy = lic(&p, SelectionPolicy::InOrder).total_weight(&p);
        let opt = optimal_weight(&p, DEFAULT_BUDGET).value;
        if opt > 0.0 {
            total_ratio += greedy / opt;
            count += 1;
        }
    }
    let avg = total_ratio / count as f64;
    assert!(avg > 0.85, "average weight ratio {avg} suspiciously low");
}

#[test]
fn lemma1_gadget_centre_is_pushed_to_bottom_choices() {
    // On the tight family, the greedy solution really does hand the centre
    // its b *worst* neighbours while the satisfaction-optimal solution would
    // hand it better ones — the measured gap approaches the analytic one.
    for (b, l) in [(2u32, 6u32), (3, 9)] {
        let p = lemma1_tight_instance(b, l);
        let greedy = lic(&p, SelectionPolicy::InOrder);
        let opt = optimal_satisfaction(&p, DEFAULT_BUDGET);
        assert!(opt.proven_optimal);
        let g_sat = greedy.total_satisfaction(&p);
        let o_sat = opt.matching.total_satisfaction(&p);
        assert!(
            g_sat <= o_sat + 1e-9,
            "greedy cannot beat the satisfaction optimum"
        );
        // The guarantee still holds, of course.
        assert!(g_sat >= overall_bound(p.bmax()) * o_sat - 1e-9);
    }
}

#[test]
fn theorem2_against_blossom_opt_at_larger_n() {
    // Blossom gives the exact one-to-one OPT far beyond B&B sizes; the ½
    // bound must hold there too.
    use owp_matching::blossom::optimal_weight_blossom;
    for seed in 0..6 {
        let p = Problem::random_gnp(100, 0.08, 1, 800 + seed);
        let greedy = lic(&p, SelectionPolicy::InOrder).total_weight(&p);
        let opt = optimal_weight_blossom(&p).total_weight(&p);
        assert!(opt >= greedy - 1e-9, "OPT below greedy at seed {seed}");
        assert!(
            greedy >= 0.5 * opt - 1e-9,
            "seed {seed}: {greedy} < ½·{opt}"
        );
    }
}

#[test]
fn exact_solvers_agree_on_b1_with_each_other() {
    // Cross-check the two B&B objectives where they must coincide: with
    // b ≡ 1 and a single edge the optimum is that edge under both.
    use owp_graph::generators::path;
    use owp_graph::{PreferenceTable, Quotas};
    let g = path(2);
    let prefs = PreferenceTable::by_node_id(&g);
    let quotas = Quotas::uniform(&g, 1);
    let p = Problem::new(g, prefs, quotas);
    let w = optimal_weight(&p, DEFAULT_BUDGET);
    let s = optimal_satisfaction(&p, DEFAULT_BUDGET);
    assert_eq!(w.matching.size(), 1);
    assert!(w.matching.same_edges(&s.matching));
    // Single edge between two degree-1 nodes: both sides get satisfaction 1.
    assert!((w.matching.total_satisfaction(&p) - 2.0).abs() < 1e-12);
}
