//! Equivalence certificate for the integer edge-rank kernel.
//!
//! The rank-based LIC worklist and the rank-based LID candidate lists must
//! be *bit-identical* in behaviour to the original exact-key formulation:
//! the kernel is a pure change of representation, so any divergence is a
//! bug. Over 200 random instances this asserts:
//!
//! 1. `EdgeOrder` ranks induce exactly the `EdgeKey` total order;
//! 2. rank-based [`lic`] selects the same edges as the key-based
//!    [`lic_reference`] under all three selection policies;
//! 3. the LID runners (async and sync) agree with the key-based reference.

use owp_core::{run_lid, run_lid_sync};
use owp_graph::{PreferenceTable, Quotas};
use owp_matching::lic::{lic, lic_reference, SelectionPolicy};
use owp_matching::Problem;
use owp_simnet::{LatencyModel, SimConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const INSTANCES: u64 = 200;

/// Mixed instance pool: G(n, p) and Barabási–Albert topologies, random
/// preferences, heterogeneous quotas. Returns the instance and its seeds.
fn random_instance(meta: &mut StdRng) -> (Problem, String) {
    let n = meta.gen_range(2usize..40);
    let topo_seed: u64 = meta.gen_range(0..=u64::MAX);
    let pref_seed: u64 = meta.gen_range(0..=u64::MAX);
    let b = meta.gen_range(1u32..5);
    let ba = meta.gen_range(0u32..2) == 0 && n >= 3;
    let mut rng = StdRng::seed_from_u64(topo_seed);
    let g = if ba {
        owp_graph::generators::barabasi_albert(n, 2, &mut rng)
    } else {
        owp_graph::generators::erdos_renyi(n, 0.35, &mut rng)
    };
    let mut prng = StdRng::seed_from_u64(pref_seed);
    let prefs = PreferenceTable::random(&g, &mut prng);
    let quotas = Quotas::random_range(&g, 0, b, &mut prng);
    let ctx = format!("n={n} ba={ba} topo_seed={topo_seed} pref_seed={pref_seed} b={b}");
    (Problem::new(g, prefs, quotas), ctx)
}

#[test]
fn ranks_induce_exactly_the_key_order() {
    let mut meta = StdRng::seed_from_u64(0x0DE2);
    for case in 0..INSTANCES {
        let (p, ctx) = random_instance(&mut meta);
        let g = &p.graph;
        // Sorting by key descending must reproduce by-rank order exactly.
        let mut by_key: Vec<_> = g.edges().collect();
        by_key.sort_by_key(|&e| std::cmp::Reverse(p.weights.key(g, e)));
        assert_eq!(
            by_key,
            p.order.heaviest_first(),
            "case {case} ({ctx}): rank permutation ≠ key sort"
        );
        for (r, &e) in by_key.iter().enumerate() {
            assert_eq!(p.order.rank(e) as usize, r, "case {case} ({ctx})");
        }
    }
}

#[test]
fn lic_on_ranks_matches_lic_on_keys_all_policies() {
    let mut meta = StdRng::seed_from_u64(0xE001);
    for case in 0..INSTANCES {
        let (p, ctx) = random_instance(&mut meta);
        let shuffle_seed: u64 = meta.gen_range(0..=u64::MAX);
        for policy in [
            SelectionPolicy::InOrder,
            SelectionPolicy::Reverse,
            SelectionPolicy::Random(shuffle_seed),
        ] {
            let fast = lic(&p, policy);
            let reference = lic_reference(&p, policy);
            assert!(
                fast.same_edges(&reference),
                "case {case} ({ctx}, {policy:?}): rank LIC ≠ key LIC"
            );
        }
    }
}

#[test]
fn lid_runners_match_the_key_reference() {
    let mut meta = StdRng::seed_from_u64(0x11DE0);
    for case in 0..INSTANCES {
        let (p, ctx) = random_instance(&mut meta);
        let reference = lic_reference(&p, SelectionPolicy::InOrder);
        let sim_seed: u64 = meta.gen_range(0..=u64::MAX);
        let cfg =
            SimConfig::with_seed(sim_seed).latency(LatencyModel::Uniform { lo: 1, hi: 32 });
        let d = run_lid(&p, cfg);
        assert!(d.terminated, "case {case} ({ctx}): LID must terminate");
        assert!(
            d.matching.same_edges(&reference),
            "case {case} ({ctx}, sim_seed={sim_seed}): async LID ≠ key LIC"
        );
        let s = run_lid_sync(&p);
        assert!(
            s.matching.same_edges(&reference),
            "case {case} ({ctx}): sync LID ≠ key LIC"
        );
    }
}
