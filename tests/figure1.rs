//! Integration: exact reproduction of the paper's only figure.
//!
//! Figure 1 (paper §3) computes the satisfaction of a node `i` with
//! `b_i = 4` connections out of a 7-entry preference list, where the
//! connected nodes occupy preference ranks {0, 1, 3, 5}: each connection
//! pays a penalty proportional to `R_i(j) − Q_i(j)` and the total is
//! `S_i = 0.893`.

use owp_graph::generators::star;
use owp_graph::{NodeId, PreferenceTable, Quotas};
use owp_matching::satisfaction::{
    delta_true, node_satisfaction, ordered_connections, static_dynamic_split,
};

/// `b_i = 4`, `|L_i| = 7`, connections at ranks {0, 1, 3, 5}.
fn figure1_setup() -> (PreferenceTable, Quotas, Vec<NodeId>) {
    let g = star(8); // hub 0, leaves 1..=7
    let prefs = PreferenceTable::by_node_id(&g);
    let quotas = Quotas::uniform(&g, 4);
    let connections = vec![NodeId(1), NodeId(2), NodeId(4), NodeId(6)];
    (prefs, quotas, connections)
}

#[test]
fn satisfaction_is_0_893() {
    let (prefs, quotas, conns) = figure1_setup();
    let s = node_satisfaction(&prefs, &quotas, NodeId(0), &conns);
    assert_eq!(format!("{s:.3}"), "0.893", "paper's headline value");
    assert!((s - 25.0 / 28.0).abs() < 1e-12, "exactly 1 − 3/28");
}

#[test]
fn penalty_decomposition_matches_paper_formula() {
    // The paper rewrites S_i as c_i/b_i − Σ (R_i(j) − Q_i(j)) / (b_i L_i).
    let (prefs, quotas, conns) = figure1_setup();
    let i = NodeId(0);
    let ordered = ordered_connections(&prefs, i, &conns);
    let (b, l) = (4.0, 7.0);
    let penalty: f64 = ordered
        .iter()
        .enumerate()
        .map(|(q, &j)| (prefs.rank(i, j).unwrap() as f64 - q as f64) / (b * l))
        .collect::<Vec<_>>()
        .iter()
        .sum();
    let s_via_penalties = ordered.len() as f64 / b - penalty;
    let s_direct = node_satisfaction(&prefs, &quotas, i, &conns);
    assert!((s_via_penalties - s_direct).abs() < 1e-12);
    // Deviations are (0, 0, 1, 2) — total penalty 3/(4·7).
    assert!((penalty - 3.0 / 28.0).abs() < 1e-12);
}

#[test]
fn per_connection_deltas_match_the_figure() {
    // Node 32 in the figure sits at Q = 2 but rank 3-or-worse; in our
    // id-mapped version the third connection (node 4) has R = 3, Q = 2.
    let (prefs, quotas, conns) = figure1_setup();
    let i = NodeId(0);
    let ordered = ordered_connections(&prefs, i, &conns);
    assert_eq!(ordered, vec![NodeId(1), NodeId(2), NodeId(4), NodeId(6)]);
    // ΔS of the rank-3 connection at position 2: 1/4 − (3−2)/28.
    let d = delta_true(&prefs, &quotas, i, NodeId(4), 2);
    assert!((d - (0.25 - 1.0 / 28.0)).abs() < 1e-12);
}

#[test]
fn static_dynamic_split_on_figure1() {
    // The same example split per eq. 7: S = S^s + S^d with
    // S^d = c(c−1)/(2bL) = 12/56 and S^s = S − S^d.
    let (prefs, quotas, conns) = figure1_setup();
    let (s_static, s_dynamic) = static_dynamic_split(&prefs, &quotas, NodeId(0), &conns);
    assert!((s_dynamic - 12.0 / 56.0).abs() < 1e-12);
    assert!((s_static + s_dynamic - 25.0 / 28.0).abs() < 1e-12);
}
