//! Integration: the paper's core argument against stability-seeking.
//!
//! Gai et al. guarantee stabilization only for *acyclic* preference systems;
//! arbitrary private metrics create cycles, and then better-response
//! dynamics can run forever with no stable state existing at all. The
//! paper's move: optimize satisfaction through eq. 9's *symmetric* weights,
//! whose induced "weight lists" are always acyclic — so LID always
//! terminates, cycles or not (§5, Lemma 5).

use owp_core::run_lid;
use owp_graph::{NodeId, PreferenceTable};
use owp_matching::bounds::overall_bound;
use owp_matching::exact::{optimal_satisfaction, DEFAULT_BUDGET};
use owp_matching::stable::acyclic::{is_acyclic, rps_gadget};
use owp_matching::stable::blocking::is_stable;
use owp_matching::stable::dynamics::better_response_from_empty;
use owp_matching::Problem;
use owp_simnet::SimConfig;

#[test]
fn rps_gadget_has_no_stable_matching_but_lid_delivers() {
    let p = rps_gadget();
    assert!(!is_acyclic(&p.graph, &p.prefs), "the gadget is cyclic");

    // Stability-seeking: exhaustive check that NO matching is stable, and
    // dynamics run to the cap.
    use owp_matching::BMatching;
    for e in p.graph.edges() {
        let m = BMatching::from_edges(&p, [e]);
        assert!(!is_stable(&p, &m), "{e:?} should be blocked");
    }
    assert!(!is_stable(&p, &BMatching::empty(&p.graph)));
    let (_, out) = better_response_from_empty(&p, 5_000);
    assert!(!out.converged);

    // The paper's approach: LID terminates and meets the Theorem 3 floor.
    let lid = run_lid(&p, SimConfig::with_seed(1));
    assert!(lid.terminated);
    let achieved = lid.matching.total_satisfaction(&p);
    let opt = optimal_satisfaction(&p, DEFAULT_BUDGET)
        .matching
        .total_satisfaction(&p);
    assert!(achieved >= overall_bound(p.bmax()) * opt - 1e-9);
}

/// The "weight lists" LID actually ranks by (neighbours ordered by eq. 9
/// edge weight) form an acyclic preference system for *every* instance —
/// the §5 observation that makes termination unconditional.
#[test]
fn weight_lists_are_always_acyclic() {
    for seed in 0..25 {
        let p = Problem::random_gnp(20, 0.35, 3, seed);
        // Original (random) preferences are often cyclic…
        let _maybe_cyclic = is_acyclic(&p.graph, &p.prefs);
        // …but the weight-induced lists never are.
        let weight_lists = PreferenceTable::by_score(&p.graph, |i, j| {
            let e = p.graph.edge_between(i, j).expect("neighbour");
            p.weights.get_f64(e)
        });
        assert!(
            is_acyclic(&p.graph, &weight_lists),
            "seed {seed}: symmetric weights must induce an acyclic system"
        );
    }
}

#[test]
fn random_preferences_are_frequently_cyclic() {
    // Confirm the premise: heterogeneous metrics really do create cycles
    // (otherwise the paper's complaint about Gai et al.'s restriction would
    // be moot).
    let mut cyclic = 0;
    for seed in 0..25 {
        let p = Problem::random_gnp(20, 0.35, 3, 500 + seed);
        if !is_acyclic(&p.graph, &p.prefs) {
            cyclic += 1;
        }
    }
    assert!(cyclic > 15, "only {cyclic}/25 cyclic — premise too weak?");
}

#[test]
fn lid_output_is_stable_under_its_own_weight_lists() {
    // The paper (§5): "a new b-matching problem arises when they try to
    // cooperate … this new b-matching problem always converges … due to the
    // symmetric nature of the edge weights". Formally: the locally-heaviest
    // matching has no blocking pair w.r.t. the preference system induced by
    // the very weight lists LID ranks by — we check exactly that.
    for seed in 0..12 {
        let p = Problem::random_gnp(18, 0.4, 2, 700 + seed);
        let lid = run_lid(&p, SimConfig::with_seed(seed));
        assert!(lid.terminated);

        // Preference system = p's weight lists, ordered by the exact
        // EdgeKey total order LID itself ranks by (an f64 `by_score` view
        // can break exact-rational ties differently).
        let lists: Vec<Vec<owp_graph::NodeId>> = p
            .graph
            .nodes()
            .map(|i| {
                let mut nbrs: Vec<(owp_matching::EdgeKey, owp_graph::NodeId)> = p
                    .graph
                    .neighbors(i)
                    .iter()
                    .map(|&(j, e)| (p.weights.key(&p.graph, e), j))
                    .collect();
                nbrs.sort_by_key(|&(key, _)| std::cmp::Reverse(key));
                nbrs.into_iter().map(|(_, j)| j).collect()
            })
            .collect();
        let weight_lists = PreferenceTable::from_lists(&p.graph, lists).expect("valid");
        let weight_view =
            Problem::new(p.graph.clone(), weight_lists, p.quotas.clone());
        assert!(
            is_stable(&weight_view, &lid.matching),
            "seed {seed}: LID's matching must be blocking-pair-free under its weight lists"
        );

        // And that system is acyclic, so dynamics converge on it too.
        let (dyn_m, out) = better_response_from_empty(&weight_view, 100_000);
        assert!(out.converged, "acyclic ⇒ dynamics converge");
        assert!(is_stable(&weight_view, &dyn_m));
    }
}

#[test]
fn node_ids_check() {
    // Guard the gadget construction against silent renumbering.
    let p = rps_gadget();
    assert_eq!(p.node_count(), 3);
    assert_eq!(p.prefs.list(NodeId(0))[0], NodeId(1));
    assert_eq!(p.prefs.list(NodeId(1))[0], NodeId(2));
    assert_eq!(p.prefs.list(NodeId(2))[0], NodeId(0));
}
